// Randomized robustness tests of the wire formats: single-byte
// corruptions and truncations of records and chunks must never be
// silently accepted — they either fail to parse or fail checksum
// verification. Exercises the broker's and backup's first line of
// defence.
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "rpc/messages.h"
#include "wire/chunk.h"
#include "wire/record.h"

namespace kera {
namespace {

std::vector<std::byte> BuildChunk(uint64_t seed, size_t chunk_size) {
  Xoshiro256 rng(seed);
  ChunkBuilder b(chunk_size);
  b.Start(/*stream=*/rng.Next() % 100 + 1, /*streamlet=*/3, /*producer=*/7);
  do {
    std::vector<std::byte> value(rng.NextBounded(200) + 1);
    for (auto& byte : value) byte = std::byte(rng.Next());
    RecordOptions opts;
    if (rng.NextBounded(2)) opts.version = rng.Next();
    if (rng.NextBounded(2)) opts.timestamp = rng.Next();
    if (!b.AppendRecord({}, value, opts)) break;
  } while (rng.NextBounded(3) != 0);
  auto bytes = b.Seal(rng.Next());
  return {bytes.begin(), bytes.end()};
}

/// A chunk is "accepted" if it parses, its payload checksum matches, and
/// every record parses with a valid checksum.
bool ChunkFullyAccepted(std::span<const std::byte> bytes) {
  auto view = ChunkView::Parse(bytes);
  if (!view.ok()) return false;
  if (view->total_size() != bytes.size()) return false;
  if (!view->VerifyChecksum()) return false;
  uint32_t records = 0;
  for (auto it = view->records(); !it.Done(); it.Next()) {
    if (!it.record().VerifyChecksum()) return false;
    ++records;
  }
  return records == view->record_count();
}

TEST(WireFuzzTest, EveryPayloadByteFlipIsDetected) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto chunk = BuildChunk(seed, 2048);
    ASSERT_TRUE(ChunkFullyAccepted(chunk));
    // Flip every byte of the payload (records), one at a time, each bit.
    for (size_t pos = kChunkHeaderSize; pos < chunk.size(); ++pos) {
      for (int bit = 0; bit < 8; bit += 3) {
        auto corrupted = chunk;
        corrupted[pos] ^= std::byte(1 << bit);
        EXPECT_FALSE(ChunkFullyAccepted(corrupted))
            << "undetected flip at " << pos << " bit " << bit;
      }
    }
  }
}

TEST(WireFuzzTest, PayloadChecksumFieldFlipIsDetected) {
  auto chunk = BuildChunk(11, 1024);
  for (size_t pos = chunk_offsets::kChecksum;
       pos < chunk_offsets::kChecksum + 4; ++pos) {
    auto corrupted = chunk;
    corrupted[pos] ^= std::byte{0xFF};
    EXPECT_FALSE(ChunkFullyAccepted(corrupted));
  }
}

TEST(WireFuzzTest, LengthFieldCorruptionNeverCrashes) {
  auto chunk = BuildChunk(12, 1024);
  Xoshiro256 rng(99);
  // Randomize the payload_length field; Parse must fail or the resulting
  // view must fail validation — never read out of bounds (ASAN-checked in
  // sanitizer builds, logic-checked here).
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = chunk;
    uint32_t bogus = uint32_t(rng.Next());
    std::memcpy(corrupted.data() + chunk_offsets::kPayloadLength, &bogus, 4);
    (void)ChunkFullyAccepted(corrupted);  // must not crash
  }
  SUCCEED();
}

TEST(WireFuzzTest, TruncationsAreRejected) {
  auto chunk = BuildChunk(13, 2048);
  for (size_t keep = 0; keep < chunk.size(); keep += 7) {
    EXPECT_FALSE(ChunkFullyAccepted(std::span(chunk).first(keep)))
        << "accepted truncation to " << keep;
  }
}

TEST(WireFuzzTest, RecordHeaderCorruptionDetected) {
  Xoshiro256 rng(21);
  std::vector<std::byte> buf(512);
  std::vector<std::byte> value(100);
  for (auto& b : value) b = std::byte(rng.Next());
  RecordOptions opts;
  opts.version = 5;
  opts.timestamp = 1234;
  std::span<const std::byte> key = value;  // reuse bytes as a key
  std::span<const std::byte> keys[] = {key.first(10)};
  size_t n = WriteRecord(buf, keys, value, opts);

  for (size_t pos = 4; pos < n; ++pos) {  // skip the checksum field itself
    auto corrupted = buf;
    corrupted[pos] ^= std::byte{0x01};
    auto view = RecordView::Parse(std::span(corrupted).first(n));
    if (view.ok()) {
      EXPECT_FALSE(view->VerifyChecksum()) << "undetected flip at " << pos;
    }
  }
}

TEST(WireFuzzTest, RandomBytesNeverParseAsValidChunks) {
  Xoshiro256 rng(31);
  int accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> garbage(kChunkHeaderSize + rng.NextBounded(512));
    for (auto& b : garbage) b = std::byte(rng.Next());
    if (ChunkFullyAccepted(garbage)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

// ------------------------------------------ exactly-once epoch tail

std::vector<std::byte> BuildEpochChunk(uint64_t seed, size_t chunk_size,
                                       uint32_t epoch) {
  Xoshiro256 rng(seed);
  ChunkBuilder b(chunk_size);
  b.Start(/*stream=*/rng.Next() % 100 + 1, /*streamlet=*/3, /*producer=*/7,
          epoch);
  std::vector<std::byte> value(rng.NextBounded(200) + 1);
  for (auto& byte : value) byte = std::byte(rng.Next());
  EXPECT_TRUE(b.AppendValue(value));
  auto bytes = b.Seal(rng.Next());
  return {bytes.begin(), bytes.end()};
}

TEST(WireFuzzTest, EpochTailRoundTripsAndClassicDefaultsToZero) {
  auto with = BuildEpochChunk(41, 1024, 9);
  ASSERT_TRUE(ChunkFullyAccepted(with));
  auto view = ChunkView::Parse(with);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->header_size(), kChunkHeaderSizeWithEpoch);
  EXPECT_NE(view->flags() & kChunkFlagHasEpoch, 0u);
  EXPECT_EQ(view->producer_epoch(), 9u);

  // Epoch 0 keeps the classic 56-byte format byte for byte, and a classic
  // chunk reads back as epoch 0 (the "no epoch" sentinel).
  auto classic = BuildEpochChunk(41, 1024, 0);
  ASSERT_TRUE(ChunkFullyAccepted(classic));
  auto cview = ChunkView::Parse(classic);
  ASSERT_TRUE(cview.ok());
  EXPECT_EQ(cview->header_size(), kChunkHeaderSize);
  EXPECT_EQ(cview->flags() & kChunkFlagHasEpoch, 0u);
  EXPECT_EQ(cview->producer_epoch(), 0u);
}

TEST(WireFuzzTest, EpochChunkTruncationSweepAcceptsOnlyFullLength) {
  // Every byte-prefix of old- and new-format chunks: the full frame is
  // the ONLY accepted length on either side of the format boundary.
  for (uint32_t epoch : {0u, 17u}) {
    auto chunk = BuildEpochChunk(43, 1024, epoch);
    for (size_t keep = 0; keep <= chunk.size(); ++keep) {
      bool accepted = ChunkFullyAccepted(std::span(chunk).first(keep));
      EXPECT_EQ(accepted, keep == chunk.size())
          << "epoch " << epoch << " truncated to " << keep;
    }
  }
}

TEST(WireFuzzTest, EpochFlagFlipIsRejected) {
  // Flipping kChunkFlagHasEpoch shifts where the payload starts (56 vs
  // 64), so a flipped frame must never be accepted in either direction.
  auto classic = BuildEpochChunk(47, 1024, 0);
  uint32_t flags;
  std::memcpy(&flags, classic.data() + chunk_offsets::kFlags, 4);
  flags |= kChunkFlagHasEpoch;
  std::memcpy(classic.data() + chunk_offsets::kFlags, &flags, 4);
  EXPECT_FALSE(ChunkFullyAccepted(classic));

  auto with = BuildEpochChunk(47, 1024, 23);
  std::memcpy(&flags, with.data() + chunk_offsets::kFlags, 4);
  flags &= ~kChunkFlagHasEpoch;
  std::memcpy(with.data() + chunk_offsets::kFlags, &flags, 4);
  EXPECT_FALSE(ChunkFullyAccepted(with));
}

TEST(WireFuzzTest, EpochChunkPayloadFlipsStillDetected) {
  // The payload CRC must cover the payload at its SHIFTED position: every
  // payload byte flip of a 64-byte-header chunk is still caught.
  auto chunk = BuildEpochChunk(53, 2048, 5);
  ASSERT_TRUE(ChunkFullyAccepted(chunk));
  for (size_t pos = kChunkHeaderSizeWithEpoch; pos < chunk.size(); ++pos) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto corrupted = chunk;
      corrupted[pos] ^= std::byte(1 << bit);
      EXPECT_FALSE(ChunkFullyAccepted(corrupted))
          << "undetected flip at " << pos << " bit " << bit;
    }
  }
}

TEST(RpcFuzzTest, TruncatedMessagesRejectedCleanly) {
  // Encode a representative message of every type, then feed every prefix
  // to the decoder: all must fail without crashing.
  rpc::ProduceRequest preq;
  preq.producer = 1;
  preq.stream = 2;
  std::vector<std::byte> chunk_bytes(80, std::byte{0x42});
  preq.chunks = {chunk_bytes};
  rpc::Writer w;
  preq.Encode(w);
  auto frame = rpc::Frame(rpc::Opcode::kProduce, w);
  for (size_t keep = 0; keep + 1 < frame.size(); ++keep) {
    rpc::Opcode op;
    std::span<const std::byte> body;
    auto prefix = std::span(frame).first(keep);
    if (!rpc::ParseFrame(prefix, op, body).ok()) continue;
    rpc::Reader r(body);
    auto decoded = rpc::ProduceRequest::Decode(r);
    EXPECT_FALSE(decoded.ok()) << "decoded from prefix " << keep;
  }
}

// ----- ConsumeRequest tail fields (long-poll max_wait_us / min_bytes) --
//
// The long-poll fields ride at the end of the frame behind an AtEnd()
// version guard: old senders simply omit them. That guard is a classic
// fuzz target — every split point around it must decode-or-reject
// cleanly, and the only prefixes that may decode are the two genuine
// format versions.

rpc::ConsumeRequest SampleConsumeRequest() {
  rpc::ConsumeRequest req;
  req.stream = 9;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 1, .group = 2, .start_chunk = 3,
                  .max_chunks = 4},
                 {.streamlet = 5, .group = 6, .start_chunk = 7,
                  .max_chunks = 8}};
  req.max_wait_us = 123456789;
  req.min_bytes = 4096;
  return req;
}

TEST(RpcFuzzTest, ConsumeTailFieldsRoundTripAndOldFramesDefault) {
  auto req = SampleConsumeRequest();
  rpc::Writer w;
  req.Encode(w);
  std::vector<std::byte> body(w.View().begin(), w.View().end());

  rpc::Reader r(body);
  auto decoded = rpc::ConsumeRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->max_wait_us, req.max_wait_us);
  EXPECT_EQ(decoded->min_bytes, req.min_bytes);
  ASSERT_EQ(decoded->entries.size(), 2u);

  // A pre-long-poll sender's frame is exactly this one minus the 12-byte
  // tail; it must decode with the "return immediately" defaults.
  rpc::Reader old_r{std::span(body).first(body.size() - 12)};
  auto old_decoded = rpc::ConsumeRequest::Decode(old_r);
  ASSERT_TRUE(old_decoded.ok());
  EXPECT_EQ(old_decoded->max_wait_us, 0u);
  EXPECT_EQ(old_decoded->min_bytes, 0u);
  EXPECT_EQ(old_decoded->entries.size(), 2u);
}

TEST(RpcFuzzTest, ConsumeTailTruncationsDecodeOrRejectOnly) {
  auto req = SampleConsumeRequest();
  rpc::Writer w;
  req.Encode(w);
  std::vector<std::byte> body(w.View().begin(), w.View().end());

  // Feed every byte-prefix to the decoder. Exactly two lengths are valid
  // frames — the old format (no tail) and the new one (full tail). Every
  // other prefix, including each of the eleven cuts inside the tail, must
  // be rejected; none may crash or read out of bounds.
  for (size_t keep = 0; keep <= body.size(); ++keep) {
    rpc::Reader r{std::span(body).first(keep)};
    auto decoded = rpc::ConsumeRequest::Decode(r);
    if (keep == body.size() || keep == body.size() - 12) {
      EXPECT_TRUE(decoded.ok()) << "valid boundary rejected at " << keep;
    } else {
      EXPECT_FALSE(decoded.ok()) << "decoded from bad prefix " << keep;
    }
  }
}

TEST(RpcFuzzTest, ConsumeTailGarbageValuesDecodeCleanly) {
  auto req = SampleConsumeRequest();
  rpc::Writer w;
  req.Encode(w);
  std::vector<std::byte> body(w.View().begin(), w.View().end());

  // Any 12 bytes in the tail are a structurally valid (wait, min_bytes)
  // pair — extreme values are the broker's problem to clamp, not the
  // decoder's to crash on. Decode must succeed and round-trip.
  Xoshiro256 rng(97);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = body;
    for (size_t i = mutated.size() - 12; i < mutated.size(); ++i) {
      mutated[i] = std::byte(rng.Next());
    }
    rpc::Reader r(mutated);
    auto decoded = rpc::ConsumeRequest::Decode(r);
    ASSERT_TRUE(decoded.ok());
    rpc::Writer rw;
    decoded->Encode(rw);
    std::vector<std::byte> reencoded(rw.View().begin(), rw.View().end());
    ASSERT_EQ(reencoded.size(), mutated.size());
    EXPECT_TRUE(std::equal(mutated.begin(), mutated.end(),
                           reencoded.begin()));
  }
}

TEST(RpcFuzzTest, RandomFramesNeverCrashDecoders) {
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::byte> garbage(2 + rng.NextBounded(256));
    for (auto& b : garbage) b = std::byte(rng.Next());
    rpc::Opcode op;
    std::span<const std::byte> body;
    if (!rpc::ParseFrame(garbage, op, body).ok()) continue;
    rpc::Reader r1(body);
    (void)rpc::ProduceRequest::Decode(r1);
    rpc::Reader r2(body);
    (void)rpc::ConsumeRequest::Decode(r2);
    rpc::Reader r3(body);
    (void)rpc::ReplicateRequest::Decode(r3);
    rpc::Reader r4(body);
    (void)rpc::CreateStreamRequest::Decode(r4);
  }
  SUCCEED();
}

}  // namespace
}  // namespace kera
