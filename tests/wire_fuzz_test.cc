// Randomized robustness tests of the wire formats: single-byte
// corruptions and truncations of records and chunks must never be
// silently accepted — they either fail to parse or fail checksum
// verification. Exercises the broker's and backup's first line of
// defence.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "rpc/messages.h"
#include "wire/chunk.h"
#include "wire/record.h"

namespace kera {
namespace {

std::vector<std::byte> BuildChunk(uint64_t seed, size_t chunk_size) {
  Xoshiro256 rng(seed);
  ChunkBuilder b(chunk_size);
  b.Start(/*stream=*/rng.Next() % 100 + 1, /*streamlet=*/3, /*producer=*/7);
  do {
    std::vector<std::byte> value(rng.NextBounded(200) + 1);
    for (auto& byte : value) byte = std::byte(rng.Next());
    RecordOptions opts;
    if (rng.NextBounded(2)) opts.version = rng.Next();
    if (rng.NextBounded(2)) opts.timestamp = rng.Next();
    if (!b.AppendRecord({}, value, opts)) break;
  } while (rng.NextBounded(3) != 0);
  auto bytes = b.Seal(rng.Next());
  return {bytes.begin(), bytes.end()};
}

/// A chunk is "accepted" if it parses, its payload checksum matches, and
/// every record parses with a valid checksum.
bool ChunkFullyAccepted(std::span<const std::byte> bytes) {
  auto view = ChunkView::Parse(bytes);
  if (!view.ok()) return false;
  if (view->total_size() != bytes.size()) return false;
  if (!view->VerifyChecksum()) return false;
  uint32_t records = 0;
  for (auto it = view->records(); !it.Done(); it.Next()) {
    if (!it.record().VerifyChecksum()) return false;
    ++records;
  }
  return records == view->record_count();
}

TEST(WireFuzzTest, EveryPayloadByteFlipIsDetected) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto chunk = BuildChunk(seed, 2048);
    ASSERT_TRUE(ChunkFullyAccepted(chunk));
    // Flip every byte of the payload (records), one at a time, each bit.
    for (size_t pos = kChunkHeaderSize; pos < chunk.size(); ++pos) {
      for (int bit = 0; bit < 8; bit += 3) {
        auto corrupted = chunk;
        corrupted[pos] ^= std::byte(1 << bit);
        EXPECT_FALSE(ChunkFullyAccepted(corrupted))
            << "undetected flip at " << pos << " bit " << bit;
      }
    }
  }
}

TEST(WireFuzzTest, PayloadChecksumFieldFlipIsDetected) {
  auto chunk = BuildChunk(11, 1024);
  for (size_t pos = chunk_offsets::kChecksum;
       pos < chunk_offsets::kChecksum + 4; ++pos) {
    auto corrupted = chunk;
    corrupted[pos] ^= std::byte{0xFF};
    EXPECT_FALSE(ChunkFullyAccepted(corrupted));
  }
}

TEST(WireFuzzTest, LengthFieldCorruptionNeverCrashes) {
  auto chunk = BuildChunk(12, 1024);
  Xoshiro256 rng(99);
  // Randomize the payload_length field; Parse must fail or the resulting
  // view must fail validation — never read out of bounds (ASAN-checked in
  // sanitizer builds, logic-checked here).
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = chunk;
    uint32_t bogus = uint32_t(rng.Next());
    std::memcpy(corrupted.data() + chunk_offsets::kPayloadLength, &bogus, 4);
    (void)ChunkFullyAccepted(corrupted);  // must not crash
  }
  SUCCEED();
}

TEST(WireFuzzTest, TruncationsAreRejected) {
  auto chunk = BuildChunk(13, 2048);
  for (size_t keep = 0; keep < chunk.size(); keep += 7) {
    EXPECT_FALSE(ChunkFullyAccepted(std::span(chunk).first(keep)))
        << "accepted truncation to " << keep;
  }
}

TEST(WireFuzzTest, RecordHeaderCorruptionDetected) {
  Xoshiro256 rng(21);
  std::vector<std::byte> buf(512);
  std::vector<std::byte> value(100);
  for (auto& b : value) b = std::byte(rng.Next());
  RecordOptions opts;
  opts.version = 5;
  opts.timestamp = 1234;
  std::span<const std::byte> key = value;  // reuse bytes as a key
  std::span<const std::byte> keys[] = {key.first(10)};
  size_t n = WriteRecord(buf, keys, value, opts);

  for (size_t pos = 4; pos < n; ++pos) {  // skip the checksum field itself
    auto corrupted = buf;
    corrupted[pos] ^= std::byte{0x01};
    auto view = RecordView::Parse(std::span(corrupted).first(n));
    if (view.ok()) {
      EXPECT_FALSE(view->VerifyChecksum()) << "undetected flip at " << pos;
    }
  }
}

TEST(WireFuzzTest, RandomBytesNeverParseAsValidChunks) {
  Xoshiro256 rng(31);
  int accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> garbage(kChunkHeaderSize + rng.NextBounded(512));
    for (auto& b : garbage) b = std::byte(rng.Next());
    if (ChunkFullyAccepted(garbage)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(RpcFuzzTest, TruncatedMessagesRejectedCleanly) {
  // Encode a representative message of every type, then feed every prefix
  // to the decoder: all must fail without crashing.
  rpc::ProduceRequest preq;
  preq.producer = 1;
  preq.stream = 2;
  std::vector<std::byte> chunk_bytes(80, std::byte{0x42});
  preq.chunks = {chunk_bytes};
  rpc::Writer w;
  preq.Encode(w);
  auto frame = rpc::Frame(rpc::Opcode::kProduce, w);
  for (size_t keep = 0; keep + 1 < frame.size(); ++keep) {
    rpc::Opcode op;
    std::span<const std::byte> body;
    auto prefix = std::span(frame).first(keep);
    if (!rpc::ParseFrame(prefix, op, body).ok()) continue;
    rpc::Reader r(body);
    auto decoded = rpc::ProduceRequest::Decode(r);
    EXPECT_FALSE(decoded.ok()) << "decoded from prefix " << keep;
  }
}

TEST(RpcFuzzTest, RandomFramesNeverCrashDecoders) {
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::byte> garbage(2 + rng.NextBounded(256));
    for (auto& b : garbage) b = std::byte(rng.Next());
    rpc::Opcode op;
    std::span<const std::byte> body;
    if (!rpc::ParseFrame(garbage, op, body).ok()) continue;
    rpc::Reader r1(body);
    (void)rpc::ProduceRequest::Decode(r1);
    rpc::Reader r2(body);
    (void)rpc::ConsumeRequest::Decode(r2);
    rpc::Reader r3(body);
    (void)rpc::ReplicateRequest::Decode(r3);
    rpc::Reader r4(body);
    (void)rpc::CreateStreamRequest::Decode(r4);
  }
  SUCCEED();
}

}  // namespace
}  // namespace kera
