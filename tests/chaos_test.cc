// chaos_test: seed-reproducible chaos schedules against a full in-process
// cluster with end-to-end invariant checking, plus the regression tests
// that grew out of building the harness (MiniCluster crash/restart
// lifecycle, duplicate-retry ack gating).
//
// Custom flags (after the gtest ones):
//   --chaos_seed=N       run exactly one schedule with this seed (replay)
//   --chaos_schedules=N  sweep size (default 200)
//   --chaos_events=N     events per schedule (default 50)
// Environment overrides (used by scripts/check.sh for bounded sanitizer
// runs): KERA_CHAOS_SCHEDULES, KERA_CHAOS_EVENTS. Flags win over env.
//
// A failing schedule prints its seed, dumps the annotated trace to
// chaos_failure_<seed>.trace in the working directory, and the run is
// reproducible with --chaos_seed=<seed> (same binary, same build).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos_harness.h"
#include "chaos/chaos_net.h"
#include "chaos/fault_schedule.h"
#include "cluster/mini_cluster.h"
#include "rpc/messages.h"
#include "wire/chunk.h"

namespace kera::chaos {
namespace {

uint32_t g_schedules = 200;
uint32_t g_events = 50;
bool g_single_seed = false;
uint64_t g_seed = 0;
constexpr uint64_t kSweepSeedBase = 20260806;

std::string DumpFailureTrace(uint64_t seed, const RunResult& r) {
  std::string path = "chaos_failure_" + std::to_string(seed) + ".trace";
  std::ofstream f(path, std::ios::trunc);
  f << r.trace;
  return path;
}

// Every counter a run produces, flattened for equality assertions.
std::string CounterSummary(const RunResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "ok=%d failed_event=%zu events=%llu skipped=%llu checks=%llu "
      "acked=%llu consumed=%llu redelivered=%llu retried=%llu "
      "abandoned=%llu dedup=%llu replayed=%llu pl=%llu plrec=%llu "
      "net={calls=%llu dreq=%llu "
      "dresp=%llu dup=%llu late=%llu disc=%llu part=%llu delays=%llu}",
      int(r.ok), r.failed_event, (unsigned long long)r.events_run,
      (unsigned long long)r.events_skipped, (unsigned long long)r.checks,
      (unsigned long long)r.acked_chunks, (unsigned long long)r.consumed_chunks,
      (unsigned long long)r.redelivered_chunks,
      (unsigned long long)r.retried_sends,
      (unsigned long long)r.abandoned_sends, (unsigned long long)r.dedup_hits,
      (unsigned long long)r.recovery_replayed,
      (unsigned long long)r.power_loss_events,
      (unsigned long long)r.power_loss_recovered,
      (unsigned long long)r.net.calls,
      (unsigned long long)r.net.dropped_requests,
      (unsigned long long)r.net.dropped_responses,
      (unsigned long long)r.net.duplicated_requests,
      (unsigned long long)r.net.replayed_frames,
      (unsigned long long)r.net.discarded_frames,
      (unsigned long long)r.net.partitioned_calls,
      (unsigned long long)r.net.delays_injected);
  return buf;
}

// ------------------------------------------------------------ the sweep

TEST(ChaosSweep, RandomizedSchedulesHoldInvariants) {
  const uint32_t n = g_single_seed ? 1 : g_schedules;
  uint64_t total_events = 0;
  uint64_t total_checks = 0;
  uint64_t total_acked = 0;
  uint64_t total_consumed = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunResult r = RunSeed(seed, g_events);
    total_events += r.events_run;
    total_checks += r.checks;
    total_acked += r.acked_chunks;
    total_consumed += r.consumed_chunks;
    if (!r.ok) {
      std::string path = DumpFailureTrace(seed, r);
      FAIL() << "chaos schedule violated an invariant\n"
             << "  seed:   " << seed << "\n"
             << "  event:  " << (r.failed_event == size_t(-1)
                                     ? std::string("setup/final-phase")
                                     : std::to_string(r.failed_event))
             << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path << "\n"
             << "  replay: chaos_test --chaos_seed=" << seed
             << " --chaos_events=" << g_events;
    }
  }
  // The sweep must actually exercise the system, not vacuously pass.
  EXPECT_GT(total_acked, 0u);
  EXPECT_GT(total_consumed, 0u);
  EXPECT_GT(total_checks, 0u);
  std::fprintf(stderr,
               "[chaos] schedules=%u events=%llu checks=%llu acked=%llu "
               "consumed=%llu\n",
               n, (unsigned long long)total_events,
               (unsigned long long)total_checks,
               (unsigned long long)total_acked,
               (unsigned long long)total_consumed);
}

// ------------------------------------------------- sharded-broker sweep

// The same deterministic schedules driven through brokers with two
// shared-nothing shards (BrokerConfig::shards = 2): the seed->schedule
// mapping and the oracles are untouched, so sharding must be invisible
// to all five invariants (ordering, lost-ack, at-least-once, bounded
// duplication, bounded redelivery). This exercises the per-shard
// leadership/dedup/parking state and the cross-shard mailbox path that
// shards=1 never takes.
TEST(ChaosSweep, ShardedBrokersHoldInvariants) {
  RunOptions options;
  options.broker_shards = 2;
  const uint32_t n =
      g_single_seed ? 1 : std::max<uint32_t>(1, g_schedules / 4);
  uint64_t total_checks = 0;
  uint64_t total_acked = 0;
  uint64_t total_consumed = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunResult r = RunSeed(seed, g_events, options);
    total_checks += r.checks;
    total_acked += r.acked_chunks;
    total_consumed += r.consumed_chunks;
    if (!r.ok) {
      std::string path = DumpFailureTrace(seed, r);
      FAIL() << "chaos schedule violated an invariant with broker_shards=2\n"
             << "  seed:   " << seed << "\n"
             << "  event:  " << (r.failed_event == size_t(-1)
                                     ? std::string("setup/final-phase")
                                     : std::to_string(r.failed_event))
             << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path << "\n"
             << "  replay: chaos_soak --shards=2 --seed_base=" << seed
             << " --schedules=1 --events=" << g_events;
    }
  }
  EXPECT_GT(total_acked, 0u);
  EXPECT_GT(total_consumed, 0u);
  EXPECT_GT(total_checks, 0u);
}

// Same sweep with the parallel crash-recovery engine at full fan-out:
// scatter placement, batched backup reads and per-vlog lane partitioning
// run on every crash schedule. Under the single-threaded chaos network
// the engine executes serially (and models the fan-out), so all six
// invariants must hold exactly as at recovery_parallelism=1.
TEST(ChaosSweep, ParallelRecoverySchedulesHoldInvariants) {
  RunOptions options;
  options.recovery_parallelism = 8;
  const uint32_t n =
      g_single_seed ? 1 : std::max<uint32_t>(1, g_schedules / 4);
  uint64_t total_checks = 0;
  uint64_t total_acked = 0;
  uint64_t total_tasks = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunResult r = RunSeed(seed, g_events, options);
    total_checks += r.checks;
    total_acked += r.acked_chunks;
    total_tasks += r.recovery_tasks;
    if (!r.ok) {
      std::string path = DumpFailureTrace(seed, r);
      FAIL() << "chaos schedule violated an invariant with "
                "recovery_parallelism=8\n"
             << "  seed:   " << seed << "\n"
             << "  event:  " << (r.failed_event == size_t(-1)
                                     ? std::string("setup/final-phase")
                                     : std::to_string(r.failed_event))
             << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path << "\n"
             << "  replay: chaos_soak --recovery_parallelism=8 --seed_base="
             << seed << " --schedules=1 --events=" << g_events;
    }
  }
  EXPECT_GT(total_checks, 0u);
  EXPECT_GT(total_acked, 0u);
}

// Determinism pin for the scatter engine: the recovery fan-out is a pure
// performance knob — the annotated trace (every RPC outcome, every
// checker verdict) must be byte-identical at parallelism 1 and 8, for
// the first schedules of the sweep band. This is what makes a failure
// found in the parallel sweep replayable with any setting.
TEST(ChaosSweep, TraceIdenticalAcrossRecoveryParallelism) {
  const uint32_t n = g_single_seed ? 1 : std::max<uint32_t>(1, g_schedules / 8);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunOptions serial;
    serial.recovery_parallelism = 1;
    RunOptions fanout;
    fanout.recovery_parallelism = 8;
    RunResult a = RunSeed(seed, g_events, serial);
    RunResult b = RunSeed(seed, g_events, fanout);
    ASSERT_EQ(a.ok, b.ok) << "seed " << seed;
    ASSERT_EQ(a.trace, b.trace)
        << "seed " << seed
        << ": trace diverged between recovery_parallelism 1 and 8";
    // The deterministic recovery counters must agree too (timing
    // percentiles are exempt — they are wall-clock, report-only).
    EXPECT_EQ(a.recovery_tasks, b.recovery_tasks) << "seed " << seed;
    EXPECT_EQ(a.recovery_bytes, b.recovery_bytes) << "seed " << seed;
    EXPECT_EQ(a.recovery_read_rpcs, b.recovery_read_rpcs)
        << "seed " << seed;
  }
}

// ------------------------------------------------- tiered-memory sweep

// The same deterministic schedules with a broker memory budget small
// enough (4 segments' worth against the harness's 2 KiB segments) that
// sealed groups are spilled to the per-run scratch spill log and evicted
// mid-schedule, so lagging consumers and recovery-era re-reads go
// through the cold-read cache. The seed->schedule mapping and the
// oracles are untouched: tiering must be invisible to all six
// invariants, and the band must actually evict (not vacuously pass).
TEST(ChaosSweep, TieredMemorySchedulesHoldInvariants) {
  RunOptions options;
  options.memory_budget_bytes = 1024;
  const uint32_t n =
      g_single_seed ? 1 : std::max<uint32_t>(1, g_schedules / 4);
  uint64_t total_checks = 0;
  uint64_t total_acked = 0;
  uint64_t total_consumed = 0;
  uint64_t total_spilled = 0;
  uint64_t total_evicted = 0;
  uint64_t total_cold_reads = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunResult r = RunSeed(seed, g_events, options);
    total_checks += r.checks;
    total_acked += r.acked_chunks;
    total_consumed += r.consumed_chunks;
    total_spilled += r.segments_spilled;
    total_evicted += r.segments_evicted;
    total_cold_reads += r.cold_reads;
    if (!r.ok) {
      std::string path = DumpFailureTrace(seed, r);
      FAIL() << "chaos schedule violated an invariant with "
                "memory_budget_bytes=1024\n"
             << "  seed:   " << seed << "\n"
             << "  event:  " << (r.failed_event == size_t(-1)
                                     ? std::string("setup/final-phase")
                                     : std::to_string(r.failed_event))
             << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path << "\n"
             << "  replay: chaos_soak --memory_budget=1024 --seed_base="
             << seed << " --schedules=1 --events=" << g_events;
    }
  }
  EXPECT_GT(total_checks, 0u);
  EXPECT_GT(total_acked, 0u);
  EXPECT_GT(total_consumed, 0u);
  if (!g_single_seed) {
    // The band must force the tiered path, not leave every segment hot.
    EXPECT_GT(total_spilled, 0u);
    EXPECT_GT(total_evicted, 0u);
  }
  std::fprintf(stderr,
               "[chaos] tiered schedules=%u spilled=%llu evicted=%llu "
               "cold_reads=%llu\n",
               n, (unsigned long long)total_spilled,
               (unsigned long long)total_evicted,
               (unsigned long long)total_cold_reads);
}

// Determinism pin for the tiered path, in both directions. (a) The
// memory budget is a pure performance knob: spill/evict decisions are a
// function of seal order and budget (the evictor forces the spill
// record durable instead of racing the flusher), cold reads return the
// same bytes the segment held, and tiered counters live outside the
// trace — so the annotated trace at a tiny budget must be byte-identical
// to the unbounded run of the same seed. (b) The same tiered seed run
// twice agrees with itself, deterministic counters included.
TEST(ChaosDeterminism, TieredTraceIdenticalToUnbounded) {
  const uint32_t n =
      g_single_seed ? 1 : std::max<uint32_t>(1, g_schedules / 8);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunOptions tiered;
    tiered.memory_budget_bytes = 1024;
    RunResult unbounded = RunSeed(seed, g_events);
    RunResult a = RunSeed(seed, g_events, tiered);
    RunResult b = RunSeed(seed, g_events, tiered);
    ASSERT_EQ(unbounded.ok, a.ok) << "seed " << seed;
    ASSERT_EQ(unbounded.trace, a.trace)
        << "seed " << seed
        << ": trace diverged between unbounded and tiered memory";
    EXPECT_EQ(unbounded.segments_evicted, 0u) << "seed " << seed;
    ASSERT_EQ(a.trace, b.trace)
        << "seed " << seed << ": tiered trace diverged across reruns";
    EXPECT_EQ(a.segments_spilled, b.segments_spilled) << "seed " << seed;
    EXPECT_EQ(a.segments_evicted, b.segments_evicted) << "seed " << seed;
    EXPECT_EQ(a.cold_reads, b.cold_reads) << "seed " << seed;
    EXPECT_EQ(a.cold_cache_hits, b.cold_cache_hits) << "seed " << seed;
    EXPECT_EQ(a.cold_cache_misses, b.cold_cache_misses) << "seed " << seed;
    EXPECT_EQ(CounterSummary(a), CounterSummary(b));
  }
}

// Broker crashes with tiering on: CrashNode deletes the node's whole
// spill tree (a dead process's spill log is garbage by definition), and
// recovery must still rebuild everything from the backups — the spill
// log is never a durability dependency. Scan seeds until the band has
// executed a few broker crashes under a tiny budget.
TEST(ChaosSweep, TieredBrokerCrashRecoversFromBackups) {
  RunOptions options;
  options.memory_budget_bytes = 1024;
  uint32_t crashes = 0;
  uint64_t replayed = 0;
  const uint32_t want = g_single_seed ? 1 : 3;
  uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase;
  for (uint32_t guard = 0; crashes < want && guard < 64; ++seed, ++guard) {
    Schedule s = GenerateSchedule(seed, g_events);
    bool has_crash = false;
    for (const FaultEvent& e : s.events) {
      if (e.kind == FaultKind::kBrokerCrash) has_crash = true;
    }
    if (!has_crash && !g_single_seed) continue;
    RunResult r = RunSchedule(s, options);
    replayed += r.recovery_replayed;
    if (r.recovery_tasks > 0) ++crashes;
    if (!r.ok) {
      std::string path = DumpFailureTrace(s.seed, r);
      FAIL() << "tiered broker-crash schedule violated an invariant\n"
             << "  seed:   " << s.seed << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path;
    }
  }
  if (!g_single_seed) {
    EXPECT_GT(crashes, 0u)
        << "seed scan found no schedule that executed a broker crash";
  }
  std::fprintf(stderr,
               "[chaos] tiered crash schedules=%u replayed=%llu\n", crashes,
               (unsigned long long)replayed);
}

// ------------------------------------------------- power-loss sweep

// Mode-P schedules: every backup fault is a full power cut — the backup
// instance is destroyed, its on-disk segment log truncated at a
// schedule-chosen byte offset (mid-record, mid-group, anywhere), and the
// restarted backup rebuilds its copy map by scanning the torn log. On
// top of the five standing invariants, every recovered copy must re-read
// from disk bit-perfect (invariant 6): torn tails may shorten copies but
// never corrupt them, and no acknowledged chunk may be lost end to end
// (the primaries still hold everything they acked).
TEST(ChaosSweep, PowerLossSchedulesHoldInvariants) {
  const uint32_t want =
      g_single_seed ? 1 : std::max<uint32_t>(1, g_schedules / 8);
  uint32_t ran = 0;
  uint64_t pl_events = 0;
  uint64_t pl_recovered = 0;
  uint64_t total_acked = 0;
  uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase;
  for (; ran < want; ++seed) {
    Schedule s = GenerateSchedule(seed, g_events);
    if (!s.power_loss) {
      if (g_single_seed) GTEST_SKIP() << "seed is not a power-loss schedule";
      continue;
    }
    ++ran;
    RunResult r = RunSchedule(s);
    pl_events += r.power_loss_events;
    pl_recovered += r.power_loss_recovered;
    total_acked += r.acked_chunks;
    if (!r.ok) {
      std::string path = DumpFailureTrace(s.seed, r);
      FAIL() << "power-loss schedule violated an invariant\n"
             << "  seed:   " << s.seed << "\n"
             << "  event:  " << (r.failed_event == size_t(-1)
                                     ? std::string("setup/final-phase")
                                     : std::to_string(r.failed_event))
             << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path << "\n"
             << "  replay: chaos_test --chaos_seed=" << s.seed
             << " --chaos_events=" << g_events;
    }
  }
  if (!g_single_seed) {
    // The sweep must actually tear logs, not vacuously pass.
    EXPECT_GT(pl_events, 0u);
    EXPECT_GT(total_acked, 0u);
  }
  std::fprintf(stderr,
               "[chaos] power-loss schedules=%u cuts=%llu recovered=%llu "
               "acked=%llu\n",
               ran, (unsigned long long)pl_events,
               (unsigned long long)pl_recovered,
               (unsigned long long)total_acked);
}

// A power-loss run is deterministic end to end: the cut offset is a pure
// function of the schedule (record placement depends only on record
// sizes in ticket order — flush grouping and fsync timing never move
// bytes), so the same seed tears the same byte and recovers the same
// copies, byte-identical trace included.
TEST(ChaosDeterminism, PowerLossSameSeedTwiceIsByteIdentical) {
  uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase;
  if (!g_single_seed) {
    while (!GenerateSchedule(seed, g_events).power_loss) ++seed;
  }
  RunResult a = RunSeed(seed, g_events);
  RunResult b = RunSeed(seed, g_events);
  EXPECT_GT(a.power_loss_events + a.events_skipped, 0u);
  EXPECT_EQ(a.trace, b.trace)
      << "power-loss annotated traces diverged for seed " << seed;
  EXPECT_EQ(CounterSummary(a), CounterSummary(b));
  EXPECT_EQ(a.failure, b.failure);
}

// Determinism holds at any fixed shard count: the Direct transport path
// is single-threaded, so cross-shard mailbox Executes degenerate to
// inline calls and the annotated trace stays a pure function of
// (seed, shards).
TEST(ChaosDeterminism, ShardedSameSeedTwiceIsByteIdentical) {
  RunOptions options;
  options.broker_shards = 2;
  const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + 3;
  RunResult a = RunSeed(seed, g_events, options);
  RunResult b = RunSeed(seed, g_events, options);
  EXPECT_EQ(a.trace, b.trace)
      << "sharded annotated traces diverged for seed " << seed;
  EXPECT_EQ(CounterSummary(a), CounterSummary(b));
  EXPECT_EQ(a.failure, b.failure);
}

// ----------------------------------------------------------- determinism

TEST(ChaosDeterminism, SameSeedTwiceIsByteIdentical) {
  const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + 7;
  RunResult a = RunSeed(seed, g_events);
  RunResult b = RunSeed(seed, g_events);
  EXPECT_EQ(a.trace, b.trace) << "annotated traces diverged for seed "
                              << seed;
  EXPECT_EQ(CounterSummary(a), CounterSummary(b));
  EXPECT_EQ(a.failure, b.failure);
}

TEST(ChaosDeterminism, TraceRoundTripsAndReplaysIdentically) {
  const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + 13;
  RunResult original = RunSeed(seed, g_events);
  // The annotated trace parses back to the exact schedule...
  auto parsed = ParseTrace(original.trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schedule generated = GenerateSchedule(seed, g_events);
  ASSERT_EQ(parsed->events.size(), generated.events.size());
  EXPECT_EQ(parsed->seed, generated.seed);
  EXPECT_EQ(parsed->nodes, generated.nodes);
  EXPECT_EQ(parsed->replication_factor, generated.replication_factor);
  EXPECT_EQ(parsed->streamlets, generated.streamlets);
  EXPECT_EQ(parsed->producers, generated.producers);
  EXPECT_EQ(parsed->consumers, generated.consumers);
  EXPECT_EQ(parsed->backup_mode, generated.backup_mode);
  EXPECT_EQ(parsed->power_loss, generated.power_loss);
  EXPECT_EQ(parsed->vlog_per_subpartition, generated.vlog_per_subpartition);
  for (size_t i = 0; i < parsed->events.size(); ++i) {
    EXPECT_EQ(FormatEventLine(parsed->events[i]),
              FormatEventLine(generated.events[i]))
        << "event " << i;
  }
  // ...and replaying the parsed schedule reproduces the run byte for byte.
  RunResult replayed = RunSchedule(*parsed);
  EXPECT_EQ(replayed.trace, original.trace);
  EXPECT_EQ(CounterSummary(replayed), CounterSummary(original));
}

TEST(ChaosDeterminism, ParseTraceRejectsCorruptInput) {
  Schedule s = GenerateSchedule(42, 10);
  std::string good = FormatTrace(s);
  ASSERT_TRUE(ParseTrace(good).ok());

  EXPECT_FALSE(ParseTrace("not a trace\n").ok());
  // Truncation anywhere before "end" is rejected, never misparsed.
  EXPECT_FALSE(ParseTrace(good.substr(0, good.size() - 5)).ok());
  EXPECT_FALSE(ParseTrace(good.substr(0, good.find("ev "))).ok());
  // A dropped event line fails the declared-count check.
  size_t ev = good.find("ev ");
  std::string missing = good.substr(0, ev) + good.substr(good.find('\n', ev) + 1);
  EXPECT_FALSE(ParseTrace(missing).ok());
  // Garbage event names are rejected.
  std::string mangled = good;
  mangled.replace(ev, 3, "ex ");
  EXPECT_FALSE(ParseTrace(mangled).ok());
}

// ----------------------------------------------------------- exactly-once

// The headline exactly-once sweep: the same seed->schedule mapping —
// crashes, migrations, partitions, drops/dups/delays, consumer restarts,
// and (on the seeds that draw it) power-loss log tearing — driven with
// RunOptions::exactly_once. Producers stamp coordinator epochs, every
// consume event durably commits cursors as offset system chunks, and a
// consumer restart resumes from offsets fetched back from the brokers.
// Invariant 4 is tightened: ZERO user-record redelivery across restarts
// (the per-key duplication bound and the completeness oracle still run),
// so any lost, stale or misapplied offset — through replication,
// recovery replay or tiering — fails the sweep.
TEST(ChaosSweep, ExactlyOnceSchedulesHoldInvariants) {
  RunOptions options;
  options.exactly_once = true;
  const uint32_t n = g_single_seed ? 1 : g_schedules;
  uint64_t total_acked = 0;
  uint64_t total_consumed = 0;
  uint64_t total_redelivered = 0;
  uint64_t total_commits = 0;
  uint64_t total_fenced = 0;
  uint64_t pl_events = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunResult r = RunSeed(seed, g_events, options);
    total_acked += r.acked_chunks;
    total_consumed += r.consumed_chunks;
    total_redelivered += r.redelivered_chunks;
    total_commits += r.offset_commits;
    total_fenced += r.fenced_rejections;
    pl_events += r.power_loss_events;
    if (!r.ok) {
      std::string path = DumpFailureTrace(seed, r);
      FAIL() << "exactly-once schedule violated an invariant\n"
             << "  seed:   " << seed << "\n"
             << "  event:  " << (r.failed_event == size_t(-1)
                                     ? std::string("setup/final-phase")
                                     : std::to_string(r.failed_event))
             << "\n"
             << "  what:   " << r.failure << "\n"
             << "  trace:  " << path << "\n"
             << "  replay: chaos_test --chaos_seed=" << seed
             << " --chaos_events=" << g_events;
    }
    EXPECT_EQ(r.redelivered_chunks, 0u)
        << "user-record redelivery under exactly-once, seed " << seed;
  }
  // The sweep must exercise the exactly-once machinery, not vacuously
  // pass: data flowed, commits landed, and nothing was ever redelivered.
  EXPECT_GT(total_acked, 0u);
  EXPECT_GT(total_consumed, 0u);
  EXPECT_GT(total_commits, 0u);
  EXPECT_EQ(total_redelivered, 0u);
  std::fprintf(stderr,
               "[chaos] exactly-once schedules=%u acked=%llu consumed=%llu "
               "redelivered=%llu commits=%llu fenced=%llu power-loss=%llu\n",
               n, (unsigned long long)total_acked,
               (unsigned long long)total_consumed,
               (unsigned long long)total_redelivered,
               (unsigned long long)total_commits,
               (unsigned long long)total_fenced,
               (unsigned long long)pl_events);
}

// Exactly-once runs are as deterministic as every other mode: commits,
// offset fetches and the Quiesce-assisted retry ladder are all driven by
// the same single-threaded virtual-clock network.
TEST(ChaosDeterminism, ExactlyOnceSameSeedTwiceIsByteIdentical) {
  RunOptions options;
  options.exactly_once = true;
  const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + 5;
  RunResult a = RunSeed(seed, g_events, options);
  RunResult b = RunSeed(seed, g_events, options);
  EXPECT_EQ(a.trace, b.trace)
      << "exactly-once annotated traces diverged for seed " << seed;
  EXPECT_EQ(CounterSummary(a), CounterSummary(b));
  EXPECT_EQ(a.failure, b.failure);
}

// With the mode off (the default), the exactly-once machinery must be
// completely inert: no commit traffic, no offset chunks, no epoch
// stamping, no fence rejections — the schedules run exactly as before.
TEST(ChaosSweep, ExactlyOnceOffIsInert) {
  const uint32_t n = g_single_seed ? 1 : 4;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t seed = g_single_seed ? g_seed : kSweepSeedBase + i;
    RunResult r = RunSeed(seed, g_events);
    EXPECT_EQ(r.offset_commits, 0u) << "seed " << seed;
    EXPECT_EQ(r.fenced_rejections, 0u) << "seed " << seed;
    EXPECT_EQ(r.trace.find("# commit c="), std::string::npos)
        << "commit annotation in an exactly-once-off trace, seed " << seed;
  }
}

// ----------------------------------------------------------- regressions

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// The stale-ack dedup bug: a retried chunk whose first attempt appended
// but never became durable used to be acked immediately by the dedup
// path, fabricating durability for data that one crash could still lose.
// The fix makes the duplicate branch wait for (and propagate failures
// from) actual durability.
TEST(ChaosRegression, DuplicateRetryIsNotAckedBeforeDurability) {
  rpc::DirectNetwork direct;
  ChaosNetwork net(direct, 1);
  MiniClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 0;
  cfg.segment_size = 4 << 10;
  cfg.virtual_segment_capacity = 16 << 10;
  cfg.broker_memory_bytes = 32 << 20;
  cfg.external_network = &net;
  cfg.external_register = [&](NodeId n, rpc::RpcHandler* h) {
    net.Register(n, h);
  };
  cfg.external_crash = [&](NodeId n) { net.Crash(n); };
  cfg.external_restore = [&](NodeId n, rpc::RpcHandler* h) {
    net.Restore(n, h);
  };
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("s", opts);
  ASSERT_TRUE(info.ok());
  const NodeId leader = info->streamlet_brokers[0];

  auto produce = [&](ChunkSeq seq) {
    ChunkBuilder b(512);
    b.Start(info->stream, 0, 7);
    EXPECT_TRUE(b.AppendValue(AsBytes("value-" + std::to_string(seq))));
    auto chunk = b.Seal(seq);
    rpc::ProduceRequest req;
    req.producer = 7;
    req.stream = info->stream;
    req.chunks = {chunk};
    return cluster.broker(leader).HandleProduce(req);
  };

  ASSERT_EQ(produce(1).status, StatusCode::kOk);

  // Partition every backup service: the next chunk appends locally but
  // cannot replicate, so the produce must fail without an ack.
  for (NodeId n = 1; n <= 3; ++n) net.SetPartitioned(BackupServiceId(n), true);
  ASSERT_NE(produce(2).status, StatusCode::kOk);

  // The producer retries: the broker sees a dedup duplicate whose chunk is
  // appended but NOT durable. Pre-fix this acked instantly; it must fail.
  ASSERT_NE(produce(2).status, StatusCode::kOk);

  // Heal. The same retry now waits out replication and acks as a dup.
  for (NodeId n = 1; n <= 3; ++n) {
    net.SetPartitioned(BackupServiceId(n), false);
  }
  auto acked = produce(2);
  ASSERT_EQ(acked.status, StatusCode::kOk);
  EXPECT_EQ(acked.duplicates, 1u);
  EXPECT_EQ(acked.appended, 0u);

  // The ack was real: the data survives the leader's crash and recovery,
  // exactly once.
  cluster.CrashNode(leader);
  auto recovered = cluster.coordinator().RecoverNode(leader);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto moved = cluster.coordinator().GetStreamInfo("s");
  ASSERT_TRUE(moved.ok());
  const NodeId successor = moved->streamlet_brokers[0];
  ASSERT_NE(successor, leader);

  rpc::ConsumeRequest creq;
  creq.stream = info->stream;
  creq.max_bytes = 1 << 20;
  std::vector<uint64_t> seqs;
  for (GroupId g = 0; g < 8; ++g) {
    creq.entries = {{.streamlet = 0, .group = g, .start_chunk = 0,
                     .max_chunks = 64}};
    auto resp = cluster.broker(successor).HandleConsume(creq);
    ASSERT_EQ(resp.status, StatusCode::kOk);
    for (const auto& e : resp.entries) {
      for (const auto& raw : e.chunks) {
        auto view = ChunkView::Parse(raw);
        ASSERT_TRUE(view.ok());
        ASSERT_TRUE(view->VerifyChecksum());
        seqs.push_back(view->chunk_seq());
      }
    }
  }
  EXPECT_EQ(std::count(seqs.begin(), seqs.end(), 1u), 1);
  EXPECT_EQ(std::count(seqs.begin(), seqs.end(), 2u), 1);
  EXPECT_EQ(seqs.size(), 2u);
}

// MiniCluster crash/restart lifecycle: a crash fails parked long-polls
// promptly (they used to leak until their poll deadline), and a restarted
// node rejoins the coordinator, takes new placements, serves produce and
// consume, and re-arms long-poll wakeups.
TEST(ChaosRegression, CrashFailsParkedLongPollsAndRestartRejoins) {
  MiniClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 2;  // threaded transport: long-polls really park
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  cfg.broker_memory_bytes = 64 << 20;
  // Far beyond any test timeout: a waiter leaked until its deadline would
  // be unmistakable.
  cfg.max_consume_wait_us = 30'000'000;
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 3;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("a", opts);
  ASSERT_TRUE(info.ok());
  const NodeId victim = info->streamlet_brokers[0];

  auto long_poll = [&](StreamId stream, StreamletId sl, NodeId node) {
    rpc::ConsumeRequest req;
    req.stream = stream;
    req.max_bytes = 1 << 20;
    req.entries = {{.streamlet = sl, .group = 0, .start_chunk = 0,
                    .max_chunks = 8}};
    req.max_wait_us = 30'000'000;
    req.min_bytes = 1;
    rpc::Writer body;
    req.Encode(body);
    auto frame = rpc::Frame(rpc::Opcode::kConsume, body);
    return cluster.network().CallAsync(node, frame);
  };
  auto wait_parked = [&](NodeId node) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cluster.broker(node).GetStats().consume_long_polls == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "consume never parked on node " << node;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  auto parked = long_poll(info->stream, 0, victim);
  wait_parked(victim);

  // Crash: the parked waiter must complete promptly, not at its deadline.
  cluster.CrashNode(victim);
  ASSERT_EQ(parked.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "long-poll leaked across CrashNode";
  (void)parked.get();  // error or empty response; both are fine

  ASSERT_TRUE(cluster.coordinator().RecoverNode(victim).ok());
  ASSERT_TRUE(cluster.RestartNode(victim).ok());

  // New placements use the rejoined node: with 3 streamlets round-robined
  // over 3 live brokers, the restarted node leads at least one.
  auto info2 = cluster.coordinator().CreateStream("b", opts);
  ASSERT_TRUE(info2.ok());
  StreamletId sl2 = StreamletId(-1);
  for (size_t i = 0; i < info2->streamlet_brokers.size(); ++i) {
    if (info2->streamlet_brokers[i] == victim) sl2 = StreamletId(i);
  }
  ASSERT_NE(sl2, StreamletId(-1))
      << "restarted node received no placement in the new stream";

  // A fresh long-poll on the restarted broker parks...
  auto parked2 = long_poll(info2->stream, sl2, victim);
  wait_parked(victim);

  // ...and a produce through the network wakes it with data.
  ChunkBuilder b(1024);
  b.Start(info2->stream, sl2, 9);
  ASSERT_TRUE(b.AppendValue(AsBytes("wake")));
  auto chunk = b.Seal(1);
  rpc::ProduceRequest preq;
  preq.producer = 9;
  preq.stream = info2->stream;
  preq.chunks = {chunk};
  rpc::Writer body;
  preq.Encode(body);
  auto raw = cluster.network().Call(victim,
                                    rpc::Frame(rpc::Opcode::kProduce, body));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  rpc::Reader r(*raw);
  auto presp = rpc::ProduceResponse::Decode(r);
  ASSERT_TRUE(presp.ok());
  ASSERT_EQ(presp->status, StatusCode::kOk);

  ASSERT_EQ(parked2.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "restarted broker's long-poll was not re-armed";
  auto craw = parked2.get();
  ASSERT_TRUE(craw.ok()) << craw.status().ToString();
  rpc::Reader cr(*craw);
  auto cresp = rpc::ConsumeResponse::Decode(cr);
  ASSERT_TRUE(cresp.ok());
  ASSERT_EQ(cresp->status, StatusCode::kOk);
  ASSERT_EQ(cresp->entries.size(), 1u);
  EXPECT_GE(cresp->entries[0].chunks.size(), 1u);
}

}  // namespace
}  // namespace kera::chaos

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  using namespace kera::chaos;
  if (const char* env = std::getenv("KERA_CHAOS_SCHEDULES")) {
    g_schedules = uint32_t(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("KERA_CHAOS_EVENTS")) {
    g_events = uint32_t(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--chaos_seed=", 13) == 0) {
      g_seed = std::strtoull(arg + 13, nullptr, 10);
      g_single_seed = true;
    } else if (std::strncmp(arg, "--chaos_schedules=", 18) == 0) {
      g_schedules = uint32_t(std::strtoul(arg + 18, nullptr, 10));
    } else if (std::strncmp(arg, "--chaos_events=", 15) == 0) {
      g_events = uint32_t(std::strtoul(arg + 15, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  if (g_schedules == 0 || g_events == 0) {
    std::fprintf(stderr, "chaos_schedules and chaos_events must be > 0\n");
    return 2;
  }
  return RUN_ALL_TESTS();
}
