// Property-based tests of the storage substrate: for swept geometries
// (segment size, segments per group, Q, chunk size) and randomized
// workloads, the structural invariants of DESIGN.md §6 must hold:
//   1. per-group chunk indices are dense and ordered;
//   2. every appended chunk is retrievable and checksum-clean until trim;
//   3. the durable prefix never exceeds the appended count and is
//      monotone;
//   4. memory accounting: acquire/release is balanced after trimming.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "storage/memory_manager.h"
#include "storage/streamlet.h"
#include "wire/chunk.h"

namespace kera {
namespace {

struct Geometry {
  size_t segment_size;
  uint32_t segments_per_group;
  uint32_t q;
  size_t chunk_size;
};

class StorageGeometry : public ::testing::TestWithParam<Geometry> {};

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, ChunkSeq seq,
                                 size_t chunk_size, Xoshiro256& rng) {
  ChunkBuilder b(chunk_size);
  b.Start(stream, streamlet, producer);
  // Random record mix, at least one record.
  size_t max_value = chunk_size / 4;
  do {
    std::vector<std::byte> value(rng.NextBounded(max_value) + 1);
    for (auto& byte : value) byte = std::byte(rng.Next());
    if (!b.AppendValue(value)) break;
  } while (rng.NextBounded(4) != 0);
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

TEST_P(StorageGeometry, RandomAppendsKeepInvariants) {
  const Geometry geo = GetParam();
  MemoryManager mm(size_t(64) << 20, geo.segment_size);
  StorageConfig cfg;
  cfg.segment_size = geo.segment_size;
  cfg.segments_per_group = geo.segments_per_group;
  cfg.active_groups_per_streamlet = geo.q;
  Streamlet streamlet(mm, cfg, /*stream=*/1, /*id=*/0);

  Xoshiro256 rng(geo.segment_size * 31 + geo.q);
  constexpr int kChunks = 400;
  std::map<ProducerId, ChunkSeq> seqs;
  // Track every appended chunk's location for later verification.
  struct Appended {
    GroupId group;
    uint64_t index;
    uint32_t payload_checksum;
  };
  std::vector<Appended> all;

  for (int i = 0; i < kChunks; ++i) {
    ProducerId producer = ProducerId(rng.NextBounded(geo.q * 2));
    auto chunk = MakeChunk(1, 0, producer, ++seqs[producer], geo.chunk_size,
                           rng);
    auto view = ChunkView::Parse(chunk);
    ASSERT_TRUE(view.ok());
    auto r = streamlet.AppendChunk(producer, chunk);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Slot selection invariant: producer mod Q.
    EXPECT_EQ(r->active_slot, producer % geo.q);
    all.push_back({r->group->id(), r->locator.group_chunk_index,
                   view->payload_checksum()});
  }

  // Invariant 1+2: per group, indices dense; chunks retrievable and clean.
  std::map<GroupId, uint64_t> group_counts;
  for (const auto& a : all) group_counts[a.group] = 0;
  for (const auto& a : all) {
    Group* group = streamlet.GetGroup(a.group);
    ASSERT_NE(group, nullptr);
    ChunkLocator loc = group->GetChunk(a.index);
    EXPECT_EQ(loc.group_chunk_index, a.index);
    auto view = loc.segment->ChunkAt(loc.offset);
    ASSERT_TRUE(view.ok());
    EXPECT_TRUE(view->VerifyChecksum());
    EXPECT_EQ(view->payload_checksum(), a.payload_checksum);
    EXPECT_EQ(view->group_id(), a.group);
    ++group_counts[a.group];
  }
  uint64_t total = 0;
  for (GroupId g : streamlet.GroupIds()) {
    Group* group = streamlet.GetGroup(g);
    for (uint64_t i = 0; i < group->chunk_count(); ++i) {
      EXPECT_EQ(group->GetChunk(i).group_chunk_index, i);
    }
    total += group->chunk_count();
  }
  EXPECT_EQ(total, uint64_t(kChunks));

  // Invariant 3: durable prefix monotone, bounded by the appended count.
  for (GroupId g : streamlet.GroupIds()) {
    Group* group = streamlet.GetGroup(g);
    uint64_t count = group->chunk_count();
    // Mark durable in random order; prefix must only grow.
    std::vector<uint64_t> order;
    for (uint64_t i = 0; i < count; ++i) order.push_back(i);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    uint64_t last = 0;
    for (uint64_t idx : order) {
      group->MarkChunkDurable(idx);
      uint64_t durable = group->durable_chunk_count();
      EXPECT_GE(durable, last);
      EXPECT_LE(durable, count);
      last = durable;
    }
    EXPECT_EQ(group->durable_chunk_count(), count);
  }

  // Invariant 4: closing + trimming everything returns all memory.
  for (GroupId g : streamlet.GroupIds()) {
    streamlet.GetGroup(g)->Close();
  }
  size_t in_use_before = mm.in_use();
  EXPECT_GT(in_use_before, 0u);
  streamlet.TrimBefore(streamlet.next_group_id());
  EXPECT_EQ(mm.in_use(), 0u);
  EXPECT_EQ(streamlet.bytes_in_use(), 0u);
}

TEST_P(StorageGeometry, GroupCapacityIsRespected) {
  const Geometry geo = GetParam();
  MemoryManager mm(size_t(64) << 20, geo.segment_size);
  StorageConfig cfg;
  cfg.segment_size = geo.segment_size;
  cfg.segments_per_group = geo.segments_per_group;
  cfg.active_groups_per_streamlet = geo.q;
  Streamlet streamlet(mm, cfg, 1, 0);

  // Fill with fixed-size chunks until several groups have been created;
  // no group may exceed its segment quota.
  Xoshiro256 rng(7);
  ChunkBuilder b(geo.chunk_size);
  b.Start(1, 0, 0);
  std::vector<std::byte> value(geo.chunk_size / 2, std::byte{0x11});
  ASSERT_TRUE(b.AppendValue(value));
  auto bytes = b.Seal(1);
  std::vector<std::byte> chunk(bytes.begin(), bytes.end());

  while (streamlet.next_group_id() < 3 * geo.q) {
    ASSERT_TRUE(streamlet.AppendChunk(0, chunk).ok());
  }
  for (GroupId g : streamlet.GroupIds()) {
    Group* group = streamlet.GetGroup(g);
    EXPECT_LE(group->segment_count(), geo.segments_per_group);
    EXPECT_LE(group->bytes_in_use(),
              size_t(geo.segments_per_group) * geo.segment_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StorageGeometry,
    ::testing::Values(Geometry{16 << 10, 1, 1, 1 << 10},
                      Geometry{16 << 10, 2, 1, 4 << 10},
                      Geometry{64 << 10, 2, 2, 1 << 10},
                      Geometry{64 << 10, 4, 4, 2 << 10},
                      Geometry{256 << 10, 2, 1, 16 << 10},
                      Geometry{256 << 10, 4, 8, 1 << 10},
                      Geometry{1 << 20, 4, 2, 64 << 10}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      char name[80];
      std::snprintf(name, sizeof(name), "seg%zuk_spg%u_q%u_chunk%zu",
                    info.param.segment_size >> 10,
                    info.param.segments_per_group, info.param.q,
                    info.param.chunk_size);
      return std::string(name);
    });

// Memory-manager exhaustion under a streamlet: backpressure surfaces as
// kNoSpace and recovery is possible after trimming.
TEST(StorageBackpressureTest, NoSpacePropagatesAndTrimRecovers) {
  MemoryManager mm(4 * (16 << 10), 16 << 10);  // exactly 4 segments
  StorageConfig cfg;
  cfg.segment_size = 16 << 10;
  cfg.segments_per_group = 2;
  cfg.active_groups_per_streamlet = 1;
  Streamlet streamlet(mm, cfg, 1, 0);

  ChunkBuilder b(8 << 10);
  b.Start(1, 0, 0);
  std::vector<std::byte> value(7 << 10, std::byte{0x22});
  ASSERT_TRUE(b.AppendValue(value));
  auto bytes = b.Seal(1);
  std::vector<std::byte> chunk(bytes.begin(), bytes.end());

  Status last = OkStatus();
  int appended = 0;
  while (true) {
    auto r = streamlet.AppendChunk(0, chunk);
    if (!r.ok()) {
      last = r.status();
      break;
    }
    ++appended;
  }
  EXPECT_EQ(last.code(), StatusCode::kNoSpace);
  EXPECT_GT(appended, 0);

  // Mark everything durable, trim closed groups, and append again.
  for (GroupId g : streamlet.GroupIds()) {
    Group* group = streamlet.GetGroup(g);
    for (uint64_t i = 0; i < group->chunk_count(); ++i) {
      group->MarkChunkDurable(i);
    }
    group->Close();
  }
  EXPECT_GT(streamlet.TrimBefore(streamlet.next_group_id()), 0u);
  EXPECT_TRUE(streamlet.AppendChunk(0, chunk).ok());
}

}  // namespace
}  // namespace kera
