// Unit tests for the record and chunk wire formats.
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

#include "common/rng.h"
#include "wire/chunk.h"
#include "wire/record.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string AsString(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(RecordTest, RoundTripNonKeyed) {
  std::vector<std::byte> buf(256);
  size_t n = WriteRecord(buf, AsBytes("hello world"));
  EXPECT_EQ(n, kRecordFixedHeader + 11);

  auto view = RecordView::Parse(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->total_length(), n);
  EXPECT_EQ(view->key_count(), 0);
  EXPECT_FALSE(view->version().has_value());
  EXPECT_FALSE(view->timestamp().has_value());
  EXPECT_EQ(AsString(view->value()), "hello world");
  EXPECT_TRUE(view->VerifyChecksum());
}

TEST(RecordTest, RoundTripMultiKey) {
  std::vector<std::byte> buf(256);
  std::span<const std::byte> keys[] = {AsBytes("k1"), AsBytes("key-two")};
  RecordOptions opts;
  opts.version = 7;
  opts.timestamp = 1234567890;
  size_t n = WriteRecord(buf, keys, AsBytes("value"), opts);

  auto view = RecordView::Parse(std::span(buf).first(n));
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->key_count(), 2);
  EXPECT_EQ(AsString(view->key(0)), "k1");
  EXPECT_EQ(AsString(view->key(1)), "key-two");
  EXPECT_EQ(view->version(), 7u);
  EXPECT_EQ(view->timestamp(), 1234567890u);
  EXPECT_EQ(AsString(view->value()), "value");
  EXPECT_TRUE(view->VerifyChecksum());
}

TEST(RecordTest, WireSizeMatchesWrite) {
  std::vector<std::byte> buf(512);
  size_t key_sizes[] = {3, 5};
  RecordOptions opts;
  opts.timestamp = 1;
  size_t predicted = RecordWireSize(key_sizes, 10, opts);
  std::span<const std::byte> keys[] = {AsBytes("abc"), AsBytes("defgh")};
  size_t actual = WriteRecord(buf, keys, AsBytes("0123456789"), opts);
  EXPECT_EQ(predicted, actual);
}

TEST(RecordTest, EmptyValue) {
  std::vector<std::byte> buf(64);
  size_t n = WriteRecord(buf, AsBytes(""));
  auto view = RecordView::Parse(std::span(buf).first(n));
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->value().empty());
  EXPECT_TRUE(view->VerifyChecksum());
}

TEST(RecordTest, ChecksumCoversEverythingButItself) {
  std::vector<std::byte> buf(128);
  size_t n = WriteRecord(buf, AsBytes("payload"));
  auto view = RecordView::Parse(std::span(buf).first(n));
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->VerifyChecksum());
  // Flip a payload byte: checksum must fail.
  buf[n - 1] ^= std::byte{1};
  auto corrupted = RecordView::Parse(std::span(buf).first(n));
  ASSERT_TRUE(corrupted.ok());
  EXPECT_FALSE(corrupted->VerifyChecksum());
}

TEST(RecordTest, ParseRejectsTruncation) {
  std::vector<std::byte> buf(128);
  size_t n = WriteRecord(buf, AsBytes("some payload"));
  // Any strict prefix must fail to parse (header or length checks).
  auto r = RecordView::Parse(std::span(buf).first(n - 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  auto r2 = RecordView::Parse(std::span(buf).first(4));
  EXPECT_FALSE(r2.ok());
}

TEST(RecordTest, ParseStopsAtRecordBoundary) {
  std::vector<std::byte> buf(256);
  size_t n1 = WriteRecord(buf, AsBytes("first"));
  size_t n2 = WriteRecord(std::span(buf).subspan(n1), AsBytes("second!"));
  auto first = RecordView::Parse(buf);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->total_length(), n1);
  auto second = RecordView::Parse(std::span(buf).subspan(n1, n2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(AsString(second->value()), "second!");
}

// ------------------------------------------------------------------ chunk

class ChunkTest : public ::testing::Test {
 protected:
  static constexpr size_t kChunkSize = 1024;
  ChunkBuilder builder_{kChunkSize};
};

TEST_F(ChunkTest, BuildAndIterate) {
  builder_.Start(/*stream=*/9, /*streamlet=*/3, /*producer=*/77);
  ASSERT_TRUE(builder_.AppendValue(AsBytes("one")));
  ASSERT_TRUE(builder_.AppendValue(AsBytes("two")));
  ASSERT_TRUE(builder_.AppendValue(AsBytes("three")));
  auto bytes = builder_.Seal(/*seq=*/5);

  auto view = ChunkView::Parse(bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->stream_id(), 9u);
  EXPECT_EQ(view->streamlet_id(), 3u);
  EXPECT_EQ(view->producer_id(), 77u);
  EXPECT_EQ(view->chunk_seq(), 5u);
  EXPECT_EQ(view->record_count(), 3u);
  EXPECT_TRUE(view->VerifyChecksum());

  std::vector<std::string> values;
  for (auto it = view->records(); !it.Done(); it.Next()) {
    values.push_back(AsString(it.record().value()));
    EXPECT_TRUE(it.record().VerifyChecksum());
  }
  EXPECT_EQ(values, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(ChunkTest, FullChunkRejectsAppend) {
  builder_.Start(1, 0, 1);
  std::vector<std::byte> big(kChunkSize, std::byte{0x42});
  EXPECT_FALSE(builder_.AppendValue(big));  // larger than the chunk
  std::vector<std::byte> value(100, std::byte{0x42});
  size_t appended = 0;
  while (builder_.AppendValue(value)) ++appended;
  EXPECT_GT(appended, 0u);
  EXPECT_EQ(builder_.record_count(), appended);
  // Everything written fits the chunk capacity.
  auto bytes = builder_.Seal(1);
  EXPECT_LE(bytes.size(), kChunkSize);
}

TEST_F(ChunkTest, ReuseAfterSeal) {
  builder_.Start(1, 0, 1);
  ASSERT_TRUE(builder_.AppendValue(AsBytes("first chunk")));
  auto first = builder_.Seal(1);
  std::vector<std::byte> copy(first.begin(), first.end());

  builder_.Start(1, 1, 1);
  ASSERT_TRUE(builder_.AppendValue(AsBytes("second")));
  auto second = builder_.Seal(2);

  auto v1 = ChunkView::Parse(copy);
  auto v2 = ChunkView::Parse(second);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->chunk_seq(), 1u);
  EXPECT_EQ(v2->chunk_seq(), 2u);
  EXPECT_EQ(v2->streamlet_id(), 1u);
}

TEST_F(ChunkTest, AttrsAssignedInPlace) {
  builder_.Start(1, 0, 1);
  ASSERT_TRUE(builder_.AppendValue(AsBytes("x")));
  auto bytes = builder_.Seal(1);
  std::vector<std::byte> copy(bytes.begin(), bytes.end());

  AssignChunkAttrs(copy, /*group=*/4, /*segment=*/2, /*index=*/123);
  auto view = ChunkView::Parse(copy);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->group_id(), 4u);
  EXPECT_EQ(view->segment_id(), 2u);
  EXPECT_EQ(view->group_chunk_index(), 123u);
  EXPECT_TRUE(view->flags() & kChunkFlagAttrsAssigned);
  // Attribute assignment must not break the payload checksum.
  EXPECT_TRUE(view->VerifyChecksum());
}

TEST_F(ChunkTest, CorruptPayloadDetected) {
  builder_.Start(1, 0, 1);
  ASSERT_TRUE(builder_.AppendValue(AsBytes("sensitive")));
  auto bytes = builder_.Seal(1);
  std::vector<std::byte> copy(bytes.begin(), bytes.end());
  copy[kChunkHeaderSize + 5] ^= std::byte{0xFF};
  auto view = ChunkView::Parse(copy);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->VerifyChecksum());
}

TEST_F(ChunkTest, ParseRejectsTruncatedPayload) {
  builder_.Start(1, 0, 1);
  ASSERT_TRUE(builder_.AppendValue(AsBytes("0123456789")));
  auto bytes = builder_.Seal(1);
  auto r = ChunkView::Parse(bytes.first(bytes.size() - 3));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(ChunkTest, AppendSerializedRecord) {
  std::vector<std::byte> rec(128);
  size_t n = WriteRecord(rec, AsBytes("prebuilt"));
  builder_.Start(2, 1, 3);
  ASSERT_TRUE(builder_.AppendSerialized(std::span(rec).first(n)));
  auto bytes = builder_.Seal(1);
  auto view = ChunkView::Parse(bytes);
  ASSERT_TRUE(view.ok());
  auto it = view->records();
  ASSERT_FALSE(it.Done());
  EXPECT_EQ(AsString(it.record().value()), "prebuilt");
}

TEST_F(ChunkTest, EmptyChunkIsValid) {
  builder_.Start(1, 0, 1);
  auto bytes = builder_.Seal(1);
  EXPECT_EQ(bytes.size(), kChunkHeaderSize);
  auto view = ChunkView::Parse(bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->record_count(), 0u);
  EXPECT_TRUE(view->records().Done());
  EXPECT_TRUE(view->VerifyChecksum());
}

// Property-style sweep: chunks of many sizes round-trip all records.
class ChunkRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkRoundTrip, RandomRecordsSurvive) {
  const size_t chunk_size = GetParam();
  ChunkBuilder builder(chunk_size);
  Xoshiro256 rng(chunk_size);
  builder.Start(1, 0, 1);
  std::vector<std::vector<std::byte>> sent;
  while (true) {
    std::vector<std::byte> value(rng.NextBounded(200) + 1);
    for (auto& b : value) b = std::byte(rng.Next());
    if (!builder.AppendValue(value)) break;
    sent.push_back(std::move(value));
  }
  auto bytes = builder.Seal(42);
  auto view = ChunkView::Parse(bytes);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->VerifyChecksum());
  size_t i = 0;
  for (auto it = view->records(); !it.Done(); it.Next(), ++i) {
    ASSERT_LT(i, sent.size());
    ASSERT_TRUE(it.record().VerifyChecksum());
    ASSERT_EQ(it.record().value().size(), sent[i].size());
    EXPECT_EQ(std::memcmp(it.record().value().data(), sent[i].data(),
                          sent[i].size()),
              0);
  }
  EXPECT_EQ(i, sent.size());
  EXPECT_EQ(view->record_count(), sent.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkRoundTrip,
                         ::testing::Values(256, 1024, 4096, 16384, 65536));

}  // namespace
}  // namespace kera
