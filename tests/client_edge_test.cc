// Edge-case tests for the client library: producer backpressure when the
// chunk pool drains, request retries over a flaky network, oversized
// records, Flush/Close idempotence, and consumer behavior against dead
// brokers.
#include <gtest/gtest.h>

#include <string>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

MiniClusterConfig SmallConfig() {
  MiniClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  return cfg;
}

TEST(ProducerEdgeTest, RecordLargerThanChunkRejected) {
  MiniCluster cluster(SmallConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 256;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  std::string huge(1000, 'x');
  auto s = producer.Send(AsBytes(huge));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The producer stays usable for fitting records.
  EXPECT_TRUE(producer.Send(AsBytes(std::string("small"))).ok());
  EXPECT_TRUE(producer.Close().ok());
}

TEST(ProducerEdgeTest, TinyChunkPoolStillDeliversEverything) {
  // A 4-builder pool forces constant recycling through the SPSC path; no
  // record may be lost or duplicated under that backpressure.
  MiniCluster cluster(SmallConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  pc.chunk_pool_size = 4;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 2000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("r" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());
  auto stats = producer.GetStats();
  EXPECT_EQ(stats.records_sent, uint64_t(kRecords));
  EXPECT_EQ(stats.chunks_acked, stats.chunks_sent);
  EXPECT_EQ(cluster.TotalBrokerStats().chunks_appended, stats.chunks_sent);
}

TEST(ProducerEdgeTest, FlushTwiceAndCloseTwiceAreIdempotent) {
  MiniCluster cluster(SmallConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  ASSERT_TRUE(producer.Send(AsBytes(std::string("once"))).ok());
  EXPECT_TRUE(producer.Flush().ok());
  EXPECT_TRUE(producer.Flush().ok());
  EXPECT_TRUE(producer.Close().ok());
  EXPECT_TRUE(producer.Close().ok());
  EXPECT_EQ(cluster.TotalBrokerStats().chunks_appended, 1u);
}

TEST(ProducerEdgeTest, RetriesAbsorbFlakyTransport) {
  // Drop 20% of requests AND 20% of responses between clients and the
  // cluster: retries + broker dedup must still deliver exactly once.
  MiniClusterConfig cfg = SmallConfig();
  cfg.workers_per_node = 0;  // DirectNetwork under the flaky decorator
  MiniCluster cluster(cfg);
  rpc::FlakyNetwork flaky(cluster.network(),
                          {.drop_request = 0.2, .drop_response = 0.2,
                           .seed = 11});
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());

  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  pc.request_retries = 50;
  Producer producer(pc, flaky);
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("f" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());
  auto pstats = producer.GetStats();
  EXPECT_EQ(pstats.request_failures, 0u);

  // Consume through the same flaky network; the consumer retries rounds.
  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, flaky);
  ASSERT_TRUE(consumer.Connect().ok() || consumer.Connect().ok() ||
              consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(received.count("f" + std::to_string(i)), 1u) << i;
  }
  EXPECT_GT(flaky.GetStats().dropped_requests +
                flaky.GetStats().dropped_responses,
            0u);
}

TEST(ConsumerEdgeTest, SurvivesBrokerOutageAndResumes) {
  // Crash a node mid-consumption (after all data is durable elsewhere is
  // NOT guaranteed — so use R2 and crash, then recover; the consumer's
  // fetch loop retries through the outage and finishes after recovery,
  // reading from whatever leader currently serves the streamlet).
  MiniClusterConfig cfg = SmallConfig();
  cfg.nodes = 4;  // 3 survivors after the crash can still hold R3
  cfg.workers_per_node = 2;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("s", opts);
  ASSERT_TRUE(info.ok());

  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 800;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("o" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  // A consumer that resolved metadata BEFORE the crash keeps polling the
  // dead leader; after recovery a fresh consumer sees everything. (Stale
  // consumers re-resolving metadata is future work, documented.)
  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(victim).ok());

  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  EXPECT_EQ(received.size(), size_t(kRecords));
}

TEST(ConsumerEdgeTest, PollOnUnconnectedConsumerIsEmpty) {
  MiniCluster cluster(SmallConfig());
  ConsumerConfig cc;
  cc.stream = "nope";
  Consumer consumer(cc, cluster.network());
  EXPECT_FALSE(consumer.Connect().ok());
  EXPECT_TRUE(consumer.Poll(10).empty());
  EXPECT_FALSE(consumer.Finished());
  consumer.Close();  // must not hang or crash
}

}  // namespace
}  // namespace kera
