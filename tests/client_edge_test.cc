// Edge-case tests for the client library: producer backpressure when the
// chunk pool drains, request retries over a flaky network, oversized
// records, Flush/Close idempotence, and consumer behavior against dead
// brokers.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

MiniClusterConfig SmallConfig() {
  MiniClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  return cfg;
}

TEST(ProducerEdgeTest, RecordLargerThanChunkRejected) {
  MiniCluster cluster(SmallConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 256;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  std::string huge(1000, 'x');
  auto s = producer.Send(AsBytes(huge));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The producer stays usable for fitting records.
  EXPECT_TRUE(producer.Send(AsBytes(std::string("small"))).ok());
  EXPECT_TRUE(producer.Close().ok());
}

TEST(ProducerEdgeTest, TinyChunkPoolStillDeliversEverything) {
  // A 4-builder pool forces constant recycling through the SPSC path; no
  // record may be lost or duplicated under that backpressure.
  MiniCluster cluster(SmallConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  pc.chunk_pool_size = 4;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 2000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("r" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());
  auto stats = producer.GetStats();
  EXPECT_EQ(stats.records_sent, uint64_t(kRecords));
  EXPECT_EQ(stats.chunks_acked, stats.chunks_sent);
  EXPECT_EQ(cluster.TotalBrokerStats().chunks_appended, stats.chunks_sent);
}

TEST(ProducerEdgeTest, FlushTwiceAndCloseTwiceAreIdempotent) {
  MiniCluster cluster(SmallConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  ASSERT_TRUE(producer.Send(AsBytes(std::string("once"))).ok());
  EXPECT_TRUE(producer.Flush().ok());
  EXPECT_TRUE(producer.Flush().ok());
  EXPECT_TRUE(producer.Close().ok());
  EXPECT_TRUE(producer.Close().ok());
  EXPECT_EQ(cluster.TotalBrokerStats().chunks_appended, 1u);
}

TEST(ProducerEdgeTest, RetriesAbsorbFlakyTransport) {
  // Drop 20% of requests AND 20% of responses between clients and the
  // cluster: retries + broker dedup must still deliver exactly once.
  MiniClusterConfig cfg = SmallConfig();
  cfg.workers_per_node = 0;  // DirectNetwork under the flaky decorator
  MiniCluster cluster(cfg);
  rpc::FlakyNetwork flaky(cluster.network(),
                          {.drop_request = 0.2, .drop_response = 0.2,
                           .seed = 11});
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());

  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  pc.request_retries = 50;
  Producer producer(pc, flaky);
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("f" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());
  auto pstats = producer.GetStats();
  EXPECT_EQ(pstats.request_failures, 0u);

  // Consume through the same flaky network; the consumer retries rounds.
  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, flaky);
  ASSERT_TRUE(consumer.Connect().ok() || consumer.Connect().ok() ||
              consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(received.count("f" + std::to_string(i)), 1u) << i;
  }
  EXPECT_GT(flaky.GetStats().dropped_requests +
                flaky.GetStats().dropped_responses,
            0u);
}

TEST(ConsumerEdgeTest, SurvivesBrokerOutageAndResumes) {
  // Crash a node mid-consumption (after all data is durable elsewhere is
  // NOT guaranteed — so use R2 and crash, then recover; the consumer's
  // fetch loop retries through the outage and finishes after recovery,
  // reading from whatever leader currently serves the streamlet).
  MiniClusterConfig cfg = SmallConfig();
  cfg.nodes = 4;  // 3 survivors after the crash can still hold R3
  cfg.workers_per_node = 2;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("s", opts);
  ASSERT_TRUE(info.ok());

  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 800;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("o" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  // A consumer that resolved metadata BEFORE the crash keeps polling the
  // dead leader; after recovery a fresh consumer sees everything. (Stale
  // consumers re-resolving metadata is future work, documented.)
  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(victim).ok());

  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  EXPECT_EQ(received.size(), size_t(kRecords));
}

TEST(ConsumerEdgeTest, FlowControlPausesAndResumesUnderSlowPoller) {
  // A tiny prefetch budget against a slow Poll-er: the fetch workers must
  // pause (bounding buffered bytes) and resume as the application drains,
  // still delivering every record exactly once.
  MiniClusterConfig cfg = SmallConfig();
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 400;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(
        producer.Send(AsBytes("v" + std::to_string(i) + std::string(90, 'p')))
            .ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  ConsumerConfig cc;
  cc.stream = "s";
  cc.fetch_pipeline_depth = 4;
  cc.fetch_buffer_bytes = 2 << 10;      // ~4 chunks of prefetch
  cc.max_bytes_per_request = 2 << 10;   // keep responses small too
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(10)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // slow app
  }
  auto stats = consumer.GetStats();
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(received.count("v" + std::to_string(i) + std::string(90, 'p')),
              1u)
        << i;
  }
  EXPECT_GT(stats.flow_control_pauses, 0u);
}

TEST(ConsumerEdgeTest, PipelinedFetchPreservesPerGroupChunkOrder) {
  // Depth-8 pipelining with small per-entry fetches: chunks of one group
  // must still be delivered in order (one outstanding request per group),
  // across group rollovers.
  MiniClusterConfig cfg = SmallConfig();
  cfg.segment_size = 4 << 10;  // groups roll quickly
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.active_groups_per_streamlet = 2;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  constexpr int kPerProducer = 1000;
  for (ProducerId p = 1; p <= 2; ++p) {
    ProducerConfig pc;
    pc.producer_id = p;
    pc.stream = "s";
    pc.chunk_size = 512;
    Producer producer(pc, cluster.network());
    ASSERT_TRUE(producer.Connect().ok());
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(producer
                      .Send(AsBytes("p" + std::to_string(p) + "-" +
                                    std::to_string(i) + std::string(80, 'q')))
                      .ok());
    }
    ASSERT_TRUE(producer.Close().ok());
  }

  ConsumerConfig cc;
  cc.stream = "s";
  cc.fetch_pipeline_depth = 8;
  cc.max_chunks_per_entry = 2;  // many small interleaved fetches
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  std::map<std::pair<StreamletId, GroupId>, uint64_t> last_chunk;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < 2 * kPerProducer &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      auto key = std::make_pair(rec.streamlet, rec.group);
      auto it = last_chunk.find(key);
      if (it != last_chunk.end()) {
        EXPECT_GE(rec.chunk_index, it->second)
            << "chunk order violated in streamlet " << rec.streamlet
            << " group " << rec.group;
      }
      last_chunk[key] = rec.chunk_index;
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(2 * kPerProducer));
  for (ProducerId p = 1; p <= 2; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(received.count("p" + std::to_string(p) + "-" +
                               std::to_string(i) + std::string(80, 'q')),
                1u);
    }
  }
  EXPECT_GT(last_chunk.size(), 2u);  // several groups were actually read
}

TEST(ConsumerEdgeTest, LongPollEliminatesIdleEmptyResponses) {
  MiniClusterConfig cfg = SmallConfig();
  cfg.nodes = 1;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());

  // Baseline: long-poll disabled, the consumer spins empty rounds.
  uint64_t polled_empties = 0;
  {
    ConsumerConfig cc;
    cc.stream = "s";
    cc.fetch_max_wait_us = 0;
    Consumer consumer(cc, cluster.network());
    ASSERT_TRUE(consumer.Connect().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    polled_empties = consumer.GetStats().empty_responses;
    consumer.Close();
  }

  // Long-poll: idle fetches park at the broker instead.
  ConsumerConfig cc;
  cc.stream = "s";
  cc.fetch_max_wait_us = 100'000;
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  uint64_t parked_empties = consumer.GetStats().empty_responses;

  EXPECT_GT(polled_empties, 50u);
  EXPECT_LE(parked_empties, 8u);
  EXPECT_GE(cluster.TotalBrokerStats().consume_long_polls, 1u);

  // The parked fetch wakes through the whole client path when data lands.
  ProducerConfig pc;
  pc.stream = "s";
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  ASSERT_TRUE(producer.Send(AsBytes(std::string("wake"))).ok());
  ASSERT_TRUE(producer.Close().ok());
  auto recs = consumer.PollBlocking(10);
  ASSERT_EQ(recs.size(), 1u);
  consumer.Close();
}

TEST(ConsumerEdgeTest, CloseUnblocksParkedLongPoll) {
  MiniClusterConfig cfg = SmallConfig();
  cfg.nodes = 1;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("s", opts).ok());
  ConsumerConfig cc;
  cc.stream = "s";
  cc.fetch_max_wait_us = 2'000'000;  // worker parks a 2 s long-poll
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto start = std::chrono::steady_clock::now();
  consumer.Close();  // must not wait out the poll deadline
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(1500));
}

TEST(ConsumerEdgeTest, CrashMidFetchRetriesCleanlyAndCloseStaysPrompt) {
  // Kill the leader while the pipelined workers are actively fetching:
  // in-flight RPCs fail, the workers back off and retry without crashing
  // or duplicating data, and Close() stays prompt. After recovery a fresh
  // consumer (leadership moved) reads everything exactly once.
  MiniClusterConfig cfg = SmallConfig();
  cfg.nodes = 4;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("s", opts);
  ASSERT_TRUE(info.ok());
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 800;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("c" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  ConsumerConfig cc;
  cc.stream = "s";
  cc.max_bytes_per_request = 4 << 10;  // keep the fetch mid-stream longer
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> before;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (before.size() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(32)) {
      before.emplace(reinterpret_cast<const char*>(rec.value.data()),
                     rec.value.size());
    }
  }
  ASSERT_GE(before.size(), 100u);

  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& rec : consumer.Poll(100000)) {  // drain; no crash, no garbage
    before.emplace(reinterpret_cast<const char*>(rec.value.data()),
                   rec.value.size());
  }
  for (const auto& v : before) EXPECT_EQ(before.count(v), 1u);
  auto start = std::chrono::steady_clock::now();
  consumer.Close();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(1500));

  ASSERT_TRUE(cluster.coordinator().RecoverNode(victim).ok());
  ConsumerConfig cc2;
  cc2.stream = "s";
  Consumer fresh(cc2, cluster.network());
  ASSERT_TRUE(fresh.Connect().ok());
  std::multiset<std::string> all;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (all.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : fresh.PollBlocking(128)) {
      all.emplace(reinterpret_cast<const char*>(rec.value.data()),
                  rec.value.size());
    }
  }
  fresh.Close();
  ASSERT_EQ(all.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(all.count("c" + std::to_string(i)), 1u) << i;
  }
}

TEST(ConsumerEdgeTest, PollOnUnconnectedConsumerIsEmpty) {
  MiniCluster cluster(SmallConfig());
  ConsumerConfig cc;
  cc.stream = "nope";
  Consumer consumer(cc, cluster.network());
  EXPECT_FALSE(consumer.Connect().ok());
  EXPECT_TRUE(consumer.Poll(10).empty());
  EXPECT_FALSE(consumer.Finished());
  consumer.Close();  // must not hang or crash
}

}  // namespace
}  // namespace kera
