// Unit tests for the Kafka-model baseline: per-partition replicated logs,
// pull-based follower replication, high-watermark semantics.
#include <gtest/gtest.h>

#include <string_view>

#include "kafka/kafka_cluster.h"

namespace kera::kafka {
namespace {

std::vector<std::byte> Payload(size_t n, uint8_t fill = 0x5A) {
  return std::vector<std::byte>(n, std::byte(fill));
}

TEST(PartitionLogTest, AppendAndFetch) {
  PartitionLog log({/*no followers*/});
  auto p = Payload(100);
  EXPECT_EQ(log.Append(p, 10), 0u);
  EXPECT_EQ(log.Append(p, 10), 1u);
  EXPECT_EQ(log.end_offset(), 2u);
  // R=1: immediately exposed.
  EXPECT_EQ(log.high_watermark(), 2u);
  EXPECT_EQ(log.records_below_hw(), 20u);

  auto batches = log.Fetch(0, 1 << 20);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].offset, 0u);
  EXPECT_EQ(batches[1].offset, 1u);
}

TEST(PartitionLogTest, HighWatermarkIsMinOfFollowers) {
  PartitionLog log({2, 3});
  auto p = Payload(50);
  log.Append(p, 5);
  log.Append(p, 5);
  EXPECT_EQ(log.high_watermark(), 0u);  // nothing fetched yet

  log.UpdateFollower(2, 2);
  EXPECT_EQ(log.high_watermark(), 0u);  // follower 3 lags
  log.UpdateFollower(3, 1);
  EXPECT_EQ(log.high_watermark(), 1u);
  EXPECT_EQ(log.records_below_hw(), 5u);
  log.UpdateFollower(3, 2);
  EXPECT_EQ(log.high_watermark(), 2u);
  EXPECT_EQ(log.records_below_hw(), 10u);
}

TEST(PartitionLogTest, UnknownFollowerIgnored) {
  PartitionLog log({2});
  log.Append(Payload(10), 1);
  log.UpdateFollower(99, 5);
  EXPECT_EQ(log.high_watermark(), 0u);
}

TEST(PartitionLogTest, FetchRespectsMaxBytes) {
  PartitionLog log({});
  for (int i = 0; i < 10; ++i) log.Append(Payload(100), 1);
  auto batches = log.Fetch(0, 250);
  EXPECT_EQ(batches.size(), 2u);
  // At least one batch returned even under a tiny cap.
  batches = log.Fetch(0, 1);
  EXPECT_EQ(batches.size(), 1u);
}

TEST(PartitionLogTest, PeekFetchMatchesFetchWithoutCopying) {
  PartitionLog log({2});
  for (int i = 0; i < 6; ++i) log.Append(Payload(100), 7);
  log.UpdateFollower(2, 3);  // hw = 3

  auto peek = log.PeekFetch(0, 250);
  auto fetched = log.Fetch(0, 250);
  EXPECT_EQ(peek.batches, fetched.size());
  EXPECT_EQ(peek.records, 7u * fetched.size());
  size_t bytes = 0;
  for (const auto& b : fetched) bytes += b.bytes.size();
  EXPECT_EQ(peek.bytes, bytes);
  EXPECT_EQ(peek.next_offset, fetched.back().offset + 1);

  // max_batches cap.
  auto one = log.PeekFetch(0, 1 << 20, /*max_batches=*/1);
  EXPECT_EQ(one.batches, 1u);
  EXPECT_EQ(one.next_offset, 1u);

  // below_hw_only: consumers stop at the high watermark.
  auto hw = log.PeekFetch(0, 1 << 20, ~uint64_t{0}, /*below_hw_only=*/true);
  EXPECT_EQ(hw.batches, 3u);
  // Followers see past the watermark.
  auto all = log.PeekFetch(0, 1 << 20);
  EXPECT_EQ(all.batches, 6u);

  // Peek from an empty position.
  auto none = log.PeekFetch(6, 1 << 20);
  EXPECT_EQ(none.batches, 0u);
  EXPECT_EQ(none.next_offset, 6u);
}

TEST(PartitionLogTest, TrimKeepsUnreplicatedTail) {
  PartitionLog log({2});
  for (int i = 0; i < 4; ++i) log.Append(Payload(10), 1);
  log.UpdateFollower(2, 2);  // hw = 2
  EXPECT_EQ(log.Trim(10), 2u);  // only below hw
  auto batches = log.Fetch(0, 1 << 20);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].offset, 2u);
}

TEST(KafkaBrokerTest, FetchOnceAdvancesReplica) {
  KafkaBroker leader(1), follower(2);
  PartitionKey key{1, 0};
  PartitionLog* log = leader.AddLeaderPartition(key, {2});
  follower.AddFollowerPartition(key, 1);

  log->Append(Payload(100), 10);
  log->Append(Payload(100), 10);

  KafkaTuning tuning;
  size_t bytes = follower.FetchOnce(key, *log, tuning);
  EXPECT_EQ(bytes, 200u);
  EXPECT_EQ(log->high_watermark(), 2u);
  EXPECT_EQ(follower.follower_state(key)->fetched_offset, 2u);

  // Caught up: next fetch returns nothing.
  EXPECT_EQ(follower.FetchOnce(key, *log, tuning), 0u);
  auto stats = follower.GetStats();
  EXPECT_EQ(stats.fetch_rpcs, 2u);
  EXPECT_EQ(stats.empty_fetches, 1u);
}

TEST(KafkaBrokerTest, FetchMaxBytesForcesMultipleRounds) {
  KafkaBroker leader(1), follower(2);
  PartitionKey key{1, 0};
  PartitionLog* log = leader.AddLeaderPartition(key, {2});
  follower.AddFollowerPartition(key, 1);
  for (int i = 0; i < 8; ++i) log->Append(Payload(100), 1);

  KafkaTuning tuning;
  tuning.fetch_max_bytes = 250;  // 2 batches per fetch
  int rounds = 0;
  while (follower.FetchOnce(key, *log, tuning) > 0) ++rounds;
  EXPECT_EQ(rounds, 4);
  EXPECT_EQ(log->high_watermark(), 8u);
}

TEST(KafkaClusterTest, CreateTopicPlacement) {
  KafkaCluster cluster(KafkaClusterConfig{.nodes = 4, .tuning = {}});
  auto topic = cluster.CreateTopic("t", 8, 3);
  ASSERT_TRUE(topic.ok());
  EXPECT_EQ(topic->leaders.size(), 8u);
  std::map<NodeId, int> counts;
  for (NodeId n : topic->leaders) ++counts[n];
  for (const auto& [_, c] : counts) EXPECT_EQ(c, 2);
  // Every partition has a leader log and R-1 follower replicas.
  for (uint32_t p = 0; p < 8; ++p) {
    EXPECT_NE(cluster.leader_log(topic->id, p), nullptr);
  }
  EXPECT_FALSE(cluster.CreateTopic("t", 1, 1).ok());   // duplicate
  EXPECT_FALSE(cluster.CreateTopic("u", 1, 9).ok());   // R > nodes
}

TEST(KafkaClusterTest, ProduceAcksAllWaitsForFollowers) {
  KafkaCluster cluster(KafkaClusterConfig{.nodes = 3, .tuning = {}});
  auto topic = cluster.CreateTopic("t", 1, 3);
  ASSERT_TRUE(topic.ok());
  cluster.StartReplication();
  auto p = Payload(64);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.Produce(topic->id, 0, p, 4).ok());
  }
  cluster.StopReplication();
  EXPECT_EQ(cluster.HighWatermark(topic->id, 0), 20u);
  auto batches = cluster.Consume(topic->id, 0, 0, 1 << 20);
  EXPECT_EQ(batches.size(), 20u);
  auto stats = cluster.GetStats();
  EXPECT_EQ(stats.produce_batches, 20u);
  EXPECT_GT(stats.fetch_rpcs, 0u);
}

TEST(KafkaClusterTest, ConsumerNeverSeesAboveHighWatermark) {
  KafkaCluster cluster(KafkaClusterConfig{.nodes = 2, .tuning = {}});
  auto topic = cluster.CreateTopic("t", 1, 2);
  ASSERT_TRUE(topic.ok());
  // No replication running: appended batches stay above the watermark.
  ASSERT_TRUE(cluster.ProduceAsync(topic->id, 0, Payload(10), 1).ok());
  EXPECT_TRUE(cluster.Consume(topic->id, 0, 0, 1 << 20).empty());
  // Drive one fetch manually.
  PartitionKey key{topic->id, 0};
  auto* log = cluster.leader_log(topic->id, 0);
  cluster.broker(2).FetchOnce(key, *log, KafkaTuning{});
  EXPECT_EQ(cluster.Consume(topic->id, 0, 0, 1 << 20).size(), 1u);
}

TEST(KafkaClusterTest, ReplicationFactorOneExposesImmediately) {
  KafkaCluster cluster(KafkaClusterConfig{.nodes = 2, .tuning = {}});
  auto topic = cluster.CreateTopic("t", 2, 1);
  ASSERT_TRUE(topic.ok());
  ASSERT_TRUE(cluster.Produce(topic->id, 1, Payload(10), 1).ok());
  EXPECT_EQ(cluster.Consume(topic->id, 1, 0, 1 << 20).size(), 1u);
}

}  // namespace
}  // namespace kera::kafka
