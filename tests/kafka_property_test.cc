// Property-based tests of the Kafka-model partition log under randomized
// append/fetch/consume interleavings: the high watermark never regresses
// or passes the log end, consumers only see below it, follower offsets
// are monotone, and trim never removes unconsumed or unreplicated data.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "kafka/kafka_broker.h"

namespace kera::kafka {
namespace {

struct LogSweep {
  uint32_t followers;
  int operations;
  size_t fetch_max_bytes;
  uint64_t seed;
};

class KafkaLogProperty : public ::testing::TestWithParam<LogSweep> {};

TEST_P(KafkaLogProperty, RandomInterleavingKeepsInvariants) {
  const LogSweep sweep = GetParam();
  Xoshiro256 rng(sweep.seed);

  std::vector<NodeId> followers;
  for (uint32_t f = 0; f < sweep.followers; ++f) {
    followers.push_back(NodeId(10 + f));
  }
  PartitionLog log(followers);
  std::map<NodeId, uint64_t> fetched;  // follower -> next offset
  for (NodeId f : followers) fetched[f] = 0;

  uint64_t consumer_offset = 0;
  uint64_t last_hw = 0;
  uint64_t appended_records = 0;
  uint64_t consumed_records = 0;

  for (int op = 0; op < sweep.operations; ++op) {
    switch (rng.NextBounded(4)) {
      case 0: {  // append
        uint32_t records = uint32_t(rng.NextBounded(20)) + 1;
        std::vector<std::byte> bytes(rng.NextBounded(900) + 100);
        log.Append(bytes, records);
        appended_records += records;
        break;
      }
      case 1: {  // one follower fetches
        if (followers.empty()) break;
        NodeId f = followers[rng.NextBounded(followers.size())];
        auto peek = log.PeekFetch(fetched[f], sweep.fetch_max_bytes);
        auto batches = log.Fetch(fetched[f], sweep.fetch_max_bytes);
        ASSERT_EQ(peek.batches, batches.size());
        if (!batches.empty()) {
          uint64_t next = batches.back().offset + 1;
          ASSERT_GE(next, fetched[f]);  // follower offsets are monotone
          fetched[f] = next;
          log.UpdateFollower(f, next);
        }
        break;
      }
      case 2: {  // consumer reads below the high watermark
        auto peek = log.PeekFetch(consumer_offset, 1 << 20,
                                  /*max_batches=*/4,
                                  /*below_hw_only=*/true);
        ASSERT_LE(peek.next_offset, log.high_watermark());
        consumer_offset = peek.next_offset;
        consumed_records += peek.records;
        break;
      }
      case 3: {  // trim what is consumed and replicated
        log.Trim(consumer_offset);
        break;
      }
    }
    // Global invariants after every operation.
    uint64_t hw = log.high_watermark();
    ASSERT_GE(hw, last_hw);          // watermark never regresses
    ASSERT_LE(hw, log.end_offset()); // never passes the end
    last_hw = hw;
    if (!followers.empty()) {
      uint64_t min_fetched = ~uint64_t{0};
      for (const auto& [_, off] : fetched) {
        min_fetched = std::min(min_fetched, off);
      }
      ASSERT_EQ(hw, std::min(min_fetched, log.end_offset()));
    }
  }

  // Drain: fetch all followers to the end, then consume everything.
  for (NodeId f : followers) {
    while (true) {
      auto batches = log.Fetch(fetched[f], sweep.fetch_max_bytes);
      if (batches.empty()) break;
      fetched[f] = batches.back().offset + 1;
      log.UpdateFollower(f, fetched[f]);
    }
  }
  EXPECT_EQ(log.high_watermark(), log.end_offset());
  // Conservation: everything appended is either already consumed or still
  // readable below the (now complete) high watermark.
  auto rest = log.PeekFetch(consumer_offset, ~size_t{0}, ~uint64_t{0},
                            /*below_hw_only=*/true);
  EXPECT_EQ(consumed_records + rest.records, appended_records);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, KafkaLogProperty,
    ::testing::Values(LogSweep{0, 400, 4 << 10, 1},
                      LogSweep{1, 400, 1 << 10, 2},
                      LogSweep{2, 600, 4 << 10, 3},
                      LogSweep{3, 600, 64 << 10, 4},
                      LogSweep{2, 800, 512, 5}),
    [](const ::testing::TestParamInfo<LogSweep>& info) {
      char name[64];
      std::snprintf(name, sizeof(name), "f%u_ops%d_fetch%zu_seed%llu",
                    info.param.followers, info.param.operations,
                    info.param.fetch_max_bytes,
                    (unsigned long long)info.param.seed);
      return std::string(name);
    });

}  // namespace
}  // namespace kera::kafka
