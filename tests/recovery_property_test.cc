// Property-based crash-recovery tests: for swept (replication factor,
// stream count, vlog policy, victim) configurations, every acknowledged
// chunk must survive a broker crash with per-producer order intact, and
// recovered data must be re-replicated on the new leaders.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

struct RecoverySweep {
  uint32_t replication;
  uint32_t streams;
  uint32_t streamlets_per_stream;
  rpc::VlogPolicy policy;
  uint32_t vlogs_per_broker;
  NodeId victim;
};

class RecoveryProperty : public ::testing::TestWithParam<RecoverySweep> {};

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST_P(RecoveryProperty, AcknowledgedDataSurvivesCrash) {
  const RecoverySweep sweep = GetParam();
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;  // deterministic DirectNetwork
  cfg.segment_size = 32 << 10;
  cfg.segments_per_group = 2;
  cfg.virtual_segment_capacity = 32 << 10;
  cfg.vlogs_per_broker = sweep.vlogs_per_broker;
  MiniCluster cluster(cfg);

  // Create the streams and remember what we acknowledge.
  std::vector<rpc::StreamInfo> infos;
  for (uint32_t s = 0; s < sweep.streams; ++s) {
    rpc::StreamOptions opts;
    opts.num_streamlets = sweep.streamlets_per_stream;
    opts.replication_factor = sweep.replication;
    opts.vlog_policy = sweep.policy;
    auto info = cluster.coordinator().CreateStream(
        "s" + std::to_string(s), opts);
    ASSERT_TRUE(info.ok());
    infos.push_back(*info);
  }

  // Two producers write interleaved chunks to every (stream, streamlet).
  std::map<std::tuple<uint32_t, StreamletId, ProducerId>, int> acked;
  constexpr int kChunksEach = 6;
  for (int round = 1; round <= kChunksEach; ++round) {
    for (uint32_t s = 0; s < sweep.streams; ++s) {
      for (StreamletId sl = 0; sl < sweep.streamlets_per_stream; ++sl) {
        for (ProducerId p = 1; p <= 2; ++p) {
          ChunkBuilder b(1024);
          b.Start(infos[s].stream, sl, p);
          std::string v = "s" + std::to_string(s) + "/" +
                          std::to_string(sl) + "/p" + std::to_string(p) +
                          "/#" + std::to_string(round);
          ASSERT_TRUE(b.AppendValue(AsBytes(v)));
          auto chunk = b.Seal(ChunkSeq(round));
          rpc::ProduceRequest req;
          req.producer = p;
          req.stream = infos[s].stream;
          req.chunks = {chunk};
          NodeId leader = infos[s].streamlet_brokers[sl];
          auto resp = cluster.broker(leader).HandleProduce(req);
          ASSERT_EQ(resp.status, StatusCode::kOk);
          ++acked[{s, sl, p}];
        }
      }
    }
  }

  cluster.CrashNode(sweep.victim);
  auto replayed = cluster.coordinator().RecoverNode(sweep.victim);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();

  // Read everything back from the (possibly new) leaders and verify
  // counts and per-producer order for every partition.
  auto fresh_all = [&](uint32_t s) {
    auto fresh =
        cluster.coordinator().GetStreamInfo("s" + std::to_string(s));
    EXPECT_TRUE(fresh.ok());
    return *fresh;
  };
  for (uint32_t s = 0; s < sweep.streams; ++s) {
    rpc::StreamInfo fresh = fresh_all(s);
    for (StreamletId sl = 0; sl < sweep.streamlets_per_stream; ++sl) {
      EXPECT_NE(fresh.streamlet_brokers[sl], sweep.victim);
      std::map<ProducerId, int> last_round;
      std::map<ProducerId, int> count;
      GroupId group = 0;
      uint64_t cursor = 0;
      int idle = 0;
      while (idle < 3) {
        rpc::ConsumeRequest creq;
        creq.stream = fresh.stream;
        creq.entries = {{.streamlet = sl, .group = group,
                         .start_chunk = cursor, .max_chunks = 64}};
        auto resp = cluster.broker(fresh.streamlet_brokers[sl])
                        .HandleConsume(creq);
        ASSERT_EQ(resp.status, StatusCode::kOk);
        const auto& e = resp.entries[0];
        for (const auto& cb : e.chunks) {
          auto view = ChunkView::Parse(cb);
          ASSERT_TRUE(view.ok());
          ASSERT_TRUE(view->VerifyChecksum());
          ProducerId p = view->producer_id();
          // Per-producer chunk sequences are strictly increasing.
          EXPECT_GT(int(view->chunk_seq()), last_round[p]);
          last_round[p] = int(view->chunk_seq());
          ++count[p];
        }
        cursor = e.next_chunk;
        if (e.group_closed) {
          ++group;
          cursor = 0;
          idle = 0;
        } else if (e.chunks.empty()) {
          ++idle;
        }
      }
      for (ProducerId p = 1; p <= 2; ++p) {
        int expected = acked[std::make_tuple(s, sl, p)];
        EXPECT_EQ(count[p], expected)
            << "s" << s << " sl" << sl << " p" << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RecoveryProperty,
    ::testing::Values(
        RecoverySweep{3, 4, 2, rpc::VlogPolicy::kSharedPerBroker, 1, 1},
        RecoverySweep{3, 4, 2, rpc::VlogPolicy::kSharedPerBroker, 4, 2},
        RecoverySweep{2, 6, 1, rpc::VlogPolicy::kSharedPerBroker, 2, 3},
        RecoverySweep{3, 2, 4, rpc::VlogPolicy::kPerSubPartition, 1, 4},
        RecoverySweep{2, 3, 3, rpc::VlogPolicy::kPerSubPartition, 1, 1},
        RecoverySweep{3, 8, 1, rpc::VlogPolicy::kSharedPerBroker, 8, 2}),
    [](const ::testing::TestParamInfo<RecoverySweep>& info) {
      char name[96];
      std::snprintf(name, sizeof(name), "R%u_s%u_sl%u_%s_v%u_victim%u",
                    info.param.replication, info.param.streams,
                    info.param.streamlets_per_stream,
                    info.param.policy == rpc::VlogPolicy::kSharedPerBroker
                        ? "shared"
                        : "subpart",
                    info.param.vlogs_per_broker, info.param.victim);
      return std::string(name);
    });

// Scattered-equals-serial oracle: the recovered state must be a pure
// function of the workload — never of the recovery fan-out. Runs one
// fixed workload per parallelism setting on the deterministic
// DirectNetwork, crashes the same victim, and compares a canonical dump
// of the full post-recovery cluster state (leader placement AND every
// recovered chunk's bytes, in consume order). Any ordering bug in the
// scatter/lane engine (e.g. replaying a producer's chunks out of seq
// order into the dedup filter) shows up as a dump mismatch.
TEST(RecoveryScatterOracleTest, ScatteredEqualsSerial) {
  auto run_and_dump = [](uint32_t parallelism) {
    MiniClusterConfig cfg;
    cfg.nodes = 5;
    cfg.workers_per_node = 0;  // deterministic DirectNetwork
    cfg.segment_size = 32 << 10;
    cfg.virtual_segment_capacity = 4 << 10;  // many segments -> many tasks
    cfg.vlogs_per_broker = 4;
    cfg.recovery_parallelism = parallelism;
    cfg.recovery_read_batch = 3;  // exercise multi-wave batching
    MiniCluster cluster(cfg);

    std::vector<rpc::StreamInfo> infos;
    for (uint32_t s = 0; s < 3; ++s) {
      rpc::StreamOptions opts;
      opts.num_streamlets = 4;
      opts.replication_factor = 3;
      auto info = cluster.coordinator().CreateStream(
          "o" + std::to_string(s), opts);
      EXPECT_TRUE(info.ok());
      infos.push_back(*info);
    }
    for (int round = 1; round <= 12; ++round) {
      for (uint32_t s = 0; s < 3; ++s) {
        for (StreamletId sl = 0; sl < 4; ++sl) {
          for (ProducerId p = 1; p <= 2; ++p) {
            ChunkBuilder b(2048);
            b.Start(infos[s].stream, sl, p);
            std::string v(600, char('a' + int(s)));
            v += "/" + std::to_string(sl) + "/" + std::to_string(p) +
                 "/" + std::to_string(round);
            EXPECT_TRUE(b.AppendValue(AsBytes(v)));
            auto chunk = b.Seal(ChunkSeq(round));
            rpc::ProduceRequest req;
            req.producer = p;
            req.stream = infos[s].stream;
            req.chunks = {chunk};
            NodeId leader = infos[s].streamlet_brokers[sl];
            EXPECT_EQ(cluster.broker(leader).HandleProduce(req).status,
                      StatusCode::kOk);
          }
        }
      }
    }

    cluster.CrashNode(2);
    auto replayed = cluster.coordinator().RecoverNode(2);
    EXPECT_TRUE(replayed.ok());

    // Canonical dump: placement, then every chunk's payload in consume
    // order per (stream, streamlet, group).
    std::string dump;
    for (uint32_t s = 0; s < 3; ++s) {
      auto fresh =
          cluster.coordinator().GetStreamInfo("o" + std::to_string(s));
      EXPECT_TRUE(fresh.ok());
      for (StreamletId sl = 0; sl < 4; ++sl) {
        dump += "lead " + std::to_string(s) + "." + std::to_string(sl) +
                "=" + std::to_string(fresh->streamlet_brokers[sl]) + "\n";
        GroupId group = 0;
        uint64_t cursor = 0;
        int idle = 0;
        while (idle < 3) {
          rpc::ConsumeRequest creq;
          creq.stream = fresh->stream;
          creq.entries = {{.streamlet = sl, .group = group,
                           .start_chunk = cursor, .max_chunks = 64}};
          auto resp = cluster.broker(fresh->streamlet_brokers[sl])
                          .HandleConsume(creq);
          EXPECT_EQ(resp.status, StatusCode::kOk);
          const auto& e = resp.entries[0];
          for (const auto& cb : e.chunks) {
            auto view = ChunkView::Parse(cb);
            EXPECT_TRUE(view.ok());
            dump += std::to_string(view->producer_id()) + ":" +
                    std::to_string(view->chunk_seq()) + ":";
            dump.append(reinterpret_cast<const char*>(cb.data()),
                        cb.size());
            dump += "\n";
          }
          cursor = e.next_chunk;
          if (e.group_closed) {
            ++group;
            cursor = 0;
            idle = 0;
          } else if (e.chunks.empty()) {
            ++idle;
          }
        }
      }
    }
    // The oracle only holds if the engine actually split the recovery
    // into many tasks (multi-wave, multi-lane).
    auto rs = cluster.coordinator().GetRecoveryStats();
    EXPECT_GT(rs.tasks_issued, 8u);
    EXPECT_GT(rs.read_rpcs_saved, 0u);
    return dump;
  };

  const std::string serial = run_and_dump(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_and_dump(3));
  EXPECT_EQ(serial, run_and_dump(8));
}

// Readmission after a scattered recovery: the restarted broker must come
// back leading NOTHING (its old streamlets now live scattered across the
// survivors), with a bumped incarnation so its new virtual segment ids
// never collide with stale backup copies from its previous life. New
// placements may then use it, and a second crash of the same node must
// recover cleanly — the end-to-end pin against segment-id reuse.
TEST(RecoveryScatterOracleTest, ReadmitAfterScatterStartsEmpty) {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  cfg.segment_size = 32 << 10;
  cfg.virtual_segment_capacity = 8 << 10;
  cfg.recovery_parallelism = 4;
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 6;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("r", opts);
  ASSERT_TRUE(info.ok());
  for (StreamletId sl = 0; sl < 6; ++sl) {
    for (int i = 1; i <= 6; ++i) {
      ChunkBuilder b(512);
      b.Start(info->stream, sl, 1);
      ASSERT_TRUE(b.AppendValue(AsBytes("r" + std::to_string(i))));
      auto chunk = b.Seal(ChunkSeq(i));
      rpc::ProduceRequest req;
      req.producer = 1;
      req.stream = info->stream;
      req.chunks = {chunk};
      ASSERT_EQ(cluster.broker(info->streamlet_brokers[sl])
                    .HandleProduce(req)
                    .status,
                StatusCode::kOk);
    }
  }

  cluster.CrashNode(1);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(1).ok());
  ASSERT_TRUE(cluster.RestartNode(1).ok());

  // The readmitted broker leads no streamlet of the pre-crash stream.
  auto fresh = cluster.coordinator().GetStreamInfo("r");
  ASSERT_TRUE(fresh.ok());
  for (StreamletId sl = 0; sl < 6; ++sl) {
    EXPECT_NE(fresh->streamlet_brokers[sl], 1u) << "sl" << sl;
  }

  // New streams may place on it again, and writes through it succeed —
  // proving its fresh incarnation's segment ids coexist with whatever
  // stale copies of its first life still sit on the backups.
  rpc::StreamOptions opts2;
  opts2.num_streamlets = 8;
  opts2.replication_factor = 2;
  auto info2 = cluster.coordinator().CreateStream("r2", opts2);
  ASSERT_TRUE(info2.ok());
  bool leads_any = false;
  for (StreamletId sl = 0; sl < 8; ++sl) {
    leads_any = leads_any || info2->streamlet_brokers[sl] == 1u;
  }
  EXPECT_TRUE(leads_any);
  for (StreamletId sl = 0; sl < 8; ++sl) {
    ChunkBuilder b(512);
    b.Start(info2->stream, sl, 7);
    ASSERT_TRUE(b.AppendValue(AsBytes("second-life")));
    auto chunk = b.Seal(1);
    rpc::ProduceRequest req;
    req.producer = 7;
    req.stream = info2->stream;
    req.chunks = {chunk};
    ASSERT_EQ(cluster.broker(info2->streamlet_brokers[sl])
                  .HandleProduce(req)
                  .status,
              StatusCode::kOk);
  }

  // Crash the readmitted node again: both generations of backup state
  // are in play, and recovery must still restore exactly the acked data.
  cluster.CrashNode(1);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(1).ok());
  auto fresh2 = cluster.coordinator().GetStreamInfo("r2");
  ASSERT_TRUE(fresh2.ok());
  uint64_t total = 0;
  for (StreamletId sl = 0; sl < 8; ++sl) {
    NodeId leader = fresh2->streamlet_brokers[sl];
    ASSERT_NE(leader, 1u);
    Stream* stream = cluster.broker(leader).GetStream(info2->stream);
    ASSERT_NE(stream, nullptr);
    Streamlet* streamlet = stream->GetStreamlet(sl);
    ASSERT_NE(streamlet, nullptr);
    total += streamlet->total_chunks();
  }
  EXPECT_EQ(total, 8u);
}

// Double failure: crash a second node after recovering the first. A
// 5-node cluster keeps >= 3 live nodes, so R3 placement remains possible
// and both recoveries must succeed. (On a 4-node cluster the second
// recovery correctly FAILS: two survivors cannot hold three copies — see
// the companion test below.)
TEST(RecoveryDoubleFailureTest, SequentialCrashesRecoverable) {
  MiniClusterConfig cfg;
  cfg.nodes = 5;
  cfg.workers_per_node = 0;
  cfg.segment_size = 32 << 10;
  cfg.virtual_segment_capacity = 32 << 10;
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 4;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("d", opts);
  ASSERT_TRUE(info.ok());

  for (StreamletId sl = 0; sl < 4; ++sl) {
    for (int i = 1; i <= 5; ++i) {
      ChunkBuilder b(512);
      b.Start(info->stream, sl, 1);
      ASSERT_TRUE(b.AppendValue(AsBytes("d" + std::to_string(i))));
      auto chunk = b.Seal(ChunkSeq(i));
      rpc::ProduceRequest req;
      req.producer = 1;
      req.stream = info->stream;
      req.chunks = {chunk};
      ASSERT_EQ(cluster.broker(info->streamlet_brokers[sl])
                    .HandleProduce(req)
                    .status,
                StatusCode::kOk);
    }
  }

  cluster.CrashNode(1);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(1).ok());
  cluster.CrashNode(2);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(2).ok());

  auto fresh = cluster.coordinator().GetStreamInfo("d");
  ASSERT_TRUE(fresh.ok());
  uint64_t total = 0;
  for (StreamletId sl = 0; sl < 4; ++sl) {
    NodeId leader = fresh->streamlet_brokers[sl];
    EXPECT_GT(leader, 2u);
    Stream* stream = cluster.broker(leader).GetStream(fresh->stream);
    ASSERT_NE(stream, nullptr);
    Streamlet* streamlet = stream->GetStreamlet(sl);
    ASSERT_NE(streamlet, nullptr);
    total += streamlet->total_chunks();
  }
  EXPECT_EQ(total, 20u);
}

// On a 4-node cluster, a second failure leaves two survivors — R3 data
// can no longer be re-replicated to three distinct nodes and recovery
// must refuse rather than silently downgrade durability.
TEST(RecoveryDoubleFailureTest, RefusesWhenClusterTooSmallForR) {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  cfg.segment_size = 32 << 10;
  cfg.virtual_segment_capacity = 32 << 10;
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 4;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("d", opts);
  ASSERT_TRUE(info.ok());
  for (StreamletId sl = 0; sl < 4; ++sl) {
    ChunkBuilder b(512);
    b.Start(info->stream, sl, 1);
    ASSERT_TRUE(b.AppendValue(AsBytes("x")));
    auto chunk = b.Seal(1);
    rpc::ProduceRequest req;
    req.producer = 1;
    req.stream = info->stream;
    req.chunks = {chunk};
    ASSERT_EQ(cluster.broker(info->streamlet_brokers[sl])
                  .HandleProduce(req)
                  .status,
              StatusCode::kOk);
  }
  cluster.CrashNode(1);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(1).ok());
  cluster.CrashNode(2);
  auto second = cluster.coordinator().RecoverNode(2);
  EXPECT_FALSE(second.ok());  // no silent durability downgrade
}

}  // namespace
}  // namespace kera
