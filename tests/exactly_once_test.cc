// End-to-end exactly-once property suite: the broker's per-(streamlet,
// producer) dedup window across epoch changes, zombie fencing after a
// leadership move (the epoch travels in the chunk bytes, so replication
// and recovery replay rebuild the fence at the new leader), dedup-state
// survival through parallel crash recovery, durable offset-commit resume
// through the real client library, and a small exactly-once chaos band.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/chaos_harness.h"
#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, uint32_t epoch,
                                 ChunkSeq seq, std::string_view value) {
  ChunkBuilder b(1024);
  b.Start(stream, streamlet, producer, epoch);
  EXPECT_TRUE(b.AppendValue(AsBytes(value)));
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

MiniClusterConfig SmallClusterConfig() {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;  // DirectNetwork: deterministic
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  cfg.broker_memory_bytes = 64 << 20;
  return cfg;
}

/// One produce RPC carrying one epoch-stamped chunk; returns the decoded
/// response so callers can distinguish appended / duplicate / fenced.
rpc::ProduceResponse ProduceOne(MiniCluster& cluster, NodeId leader,
                                const rpc::StreamInfo& info,
                                StreamletId streamlet, ProducerId producer,
                                uint32_t epoch, ChunkSeq seq,
                                std::string_view value) {
  auto chunk = MakeChunk(info.stream, streamlet, producer, epoch, seq, value);
  rpc::ProduceRequest req;
  req.producer = producer;
  req.stream = info.stream;
  req.chunks = {chunk};
  rpc::Writer body;
  req.Encode(body);
  auto raw = cluster.network().Call(
      leader, rpc::Frame(rpc::Opcode::kProduce, body));
  EXPECT_TRUE(raw.ok());
  rpc::Reader r(*raw);
  auto resp = rpc::ProduceResponse::Decode(r);
  EXPECT_TRUE(resp.ok());
  return resp.ok() ? *resp : rpc::ProduceResponse{};
}

/// Reads every durable user-record value of a streamlet from its current
/// leader (skipping offset-commit system chunks).
std::vector<std::string> ReadAllValues(MiniCluster& cluster,
                                       const std::string& name,
                                       StreamletId streamlet) {
  auto info = cluster.coordinator().GetStreamInfo(name);
  EXPECT_TRUE(info.ok());
  NodeId leader = info->streamlet_brokers[streamlet];
  std::vector<std::string> values;
  GroupId group = 0;
  uint64_t next_chunk = 0;
  int idle_rounds = 0;
  while (idle_rounds < 3) {
    rpc::ConsumeRequest req;
    req.stream = info->stream;
    req.entries = {{.streamlet = streamlet, .group = group,
                    .start_chunk = next_chunk, .max_chunks = 100}};
    rpc::Writer body;
    req.Encode(body);
    auto raw = cluster.network().Call(
        leader, rpc::Frame(rpc::Opcode::kConsume, body));
    EXPECT_TRUE(raw.ok());
    rpc::Reader r(*raw);
    auto resp = rpc::ConsumeResponse::Decode(r);
    EXPECT_TRUE(resp.ok());
    const auto& e = resp->entries[0];
    for (const auto& cb : e.chunks) {
      auto view = ChunkView::Parse(cb);
      EXPECT_TRUE(view.ok());
      if ((view->flags() & kChunkFlagOffsetCommit) != 0) continue;
      for (auto it = view->records(); !it.Done(); it.Next()) {
        auto v = it.record().value();
        values.emplace_back(reinterpret_cast<const char*>(v.data()),
                            v.size());
      }
    }
    next_chunk = e.next_chunk;
    if (e.group_closed) {
      ++group;
      next_chunk = 0;
      idle_rounds = 0;
    } else if (e.chunks.empty()) {
      ++idle_rounds;
    } else {
      idle_rounds = 0;
    }
  }
  return values;
}

// ------------------------------------------------- dedup window property

// The dedup window is (last accepted seq) per (streamlet, producer,
// epoch): any retry at or below it is swallowed, a fresh seq above it
// appends, and a HIGHER epoch resets the window (a new session restarts
// its numbering from 1 without tripping the duplicate filter). Randomized
// interleavings of fresh sends and stale retries across several epoch
// bumps must leave exactly the unique sends durable.
TEST(DedupWindowProperty, RandomRetriesAcrossEpochBumpsAppendOnce) {
  for (uint64_t seed : {1u, 7u, 23u, 51u}) {
    MiniCluster cluster(SmallClusterConfig());
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.replication_factor = 2;
    auto info = cluster.coordinator().CreateStream("w", opts);
    ASSERT_TRUE(info.ok());
    NodeId leader = info->streamlet_brokers[0];
    const ProducerId pid = 9;

    std::mt19937_64 rng(seed);
    std::vector<std::string> expected;
    uint32_t epoch = cluster.coordinator().AllocateProducer(pid).second;
    ASSERT_GE(epoch, 1u);
    ChunkSeq next_seq = 1;
    uint64_t duplicates_seen = 0;
    for (int op = 0; op < 120; ++op) {
      const uint32_t kind = uint32_t(rng() % 10);
      if (kind < 6 || next_seq == 1) {
        // Fresh send: appends exactly once.
        std::string value = "e" + std::to_string(epoch) + "-s" +
                            std::to_string(next_seq);
        auto resp = ProduceOne(cluster, leader, *info, 0, pid, epoch,
                               next_seq, value);
        ASSERT_EQ(resp.status, StatusCode::kOk);
        EXPECT_EQ(resp.appended, 1u);
        EXPECT_EQ(resp.duplicates, 0u);
        expected.push_back(std::move(value));
        ++next_seq;
      } else if (kind < 9) {
        // Stale retry of any already-accepted seq of the CURRENT session:
        // swallowed by the window, never re-appended.
        ChunkSeq stale = 1 + ChunkSeq(rng() % uint64_t(next_seq - 1));
        auto resp = ProduceOne(cluster, leader, *info, 0, pid, epoch, stale,
                               "retry-ignored");
        ASSERT_EQ(resp.status, StatusCode::kOk);
        EXPECT_EQ(resp.appended, 0u);
        EXPECT_EQ(resp.duplicates, 1u);
        ++duplicates_seen;
      } else {
        // Session restart: the coordinator bumps the epoch and the
        // sequence window resets — seq 1 of the new session is fresh
        // even though the old session got far past it.
        epoch = cluster.coordinator().AllocateProducer(pid).second;
        next_seq = 1;
      }
    }
    EXPECT_EQ(cluster.TotalBrokerStats().chunks_duplicate, duplicates_seen);
    std::vector<std::string> durable = ReadAllValues(cluster, "w", 0);
    EXPECT_EQ(durable, expected) << "seed " << seed;
  }
}

// A duplicate retry of a seq from an OLDER epoch is fenced, not deduped:
// once the window advanced to a newer session, the old instance must not
// be silently acked (its ack would claim durability under a dead session).
TEST(DedupWindowTest, OldEpochRetryIsFencedNotAcked) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("f", opts);
  ASSERT_TRUE(info.ok());
  NodeId leader = info->streamlet_brokers[0];
  const ProducerId pid = 3;
  uint32_t e1 = cluster.coordinator().AllocateProducer(pid).second;
  ASSERT_EQ(ProduceOne(cluster, leader, *info, 0, pid, e1, 1, "a").status,
            StatusCode::kOk);
  uint32_t e2 = cluster.coordinator().AllocateProducer(pid).second;
  ASSERT_GT(e2, e1);
  ASSERT_EQ(ProduceOne(cluster, leader, *info, 0, pid, e2, 1, "b").status,
            StatusCode::kOk);
  // The zombie retries its seq 1 — fenced, and nothing new appends.
  auto resp = ProduceOne(cluster, leader, *info, 0, pid, e1, 1, "a");
  EXPECT_EQ(resp.status, StatusCode::kFenced);
  EXPECT_EQ(cluster.broker(leader).GetStats().chunks_fenced, 1u);
  EXPECT_EQ(ReadAllValues(cluster, "f", 0),
            (std::vector<std::string>{"a", "b"}));
}

// ----------------------------------------------- fencing across recovery

// The fence must survive a leadership move: epochs ride inside the chunk
// bytes, so the backups' copies carry them and the recovery replay
// rebuilds the dedup window — including the newest epoch — at whichever
// broker inherits the streamlet. A zombie that never heard about its
// replacement gets kFenced at the NEW leader too.
TEST(EpochFencingTest, ZombieProducerFencedAtPostRecoveryLeader) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("z", opts);
  ASSERT_TRUE(info.ok());
  const ProducerId pid = 5;
  uint32_t e1 = cluster.coordinator().AllocateProducer(pid).second;
  NodeId old_leader = info->streamlet_brokers[0];
  for (ChunkSeq s = 1; s <= 4; ++s) {
    ASSERT_EQ(ProduceOne(cluster, old_leader, *info, 0, pid, e1, s,
                         "old-" + std::to_string(s))
                  .status,
              StatusCode::kOk);
  }
  // The producer restarts (new session) and writes under the new epoch.
  uint32_t e2 = cluster.coordinator().AllocateProducer(pid).second;
  ASSERT_EQ(ProduceOne(cluster, old_leader, *info, 0, pid, e2, 1, "new-1")
                .status,
            StatusCode::kOk);

  // Leadership moves: crash the leader and recover its streamlets.
  cluster.CrashNode(old_leader);
  auto replayed = cluster.coordinator().RecoverNode(old_leader);
  ASSERT_TRUE(replayed.ok());
  EXPECT_GT(*replayed, 0u);
  auto fresh = cluster.coordinator().GetStreamInfo("z");
  ASSERT_TRUE(fresh.ok());
  NodeId new_leader = fresh->streamlet_brokers[0];
  ASSERT_NE(new_leader, old_leader);

  // The zombie instance still stamping e1 is fenced at the new leader —
  // the epoch came back out of the replayed chunk bytes, not from any
  // side-channel the new leader was told.
  auto fenced = ProduceOne(cluster, new_leader, *fresh, 0, pid, e1, 5,
                           "zombie");
  EXPECT_EQ(fenced.status, StatusCode::kFenced);
  EXPECT_GE(cluster.broker(new_leader).GetStats().chunks_fenced, 1u);
  // The live session continues where it left off.
  auto cont = ProduceOne(cluster, new_leader, *fresh, 0, pid, e2, 2, "new-2");
  EXPECT_EQ(cont.status, StatusCode::kOk);
  EXPECT_EQ(cont.appended, 1u);
  EXPECT_EQ(ReadAllValues(cluster, "z", 0),
            (std::vector<std::string>{"old-1", "old-2", "old-3", "old-4",
                                      "new-1", "new-2"}));
}

// ------------------------------------- dedup survival through recovery

// Parallel crash recovery (fan-out 8) must rebuild the dedup window at
// every inheriting leader: retries of chunks acked BEFORE the crash are
// still classified as duplicates AFTER it, across every streamlet the
// dead node led, so a producer resequencing its in-flight window to the
// new leaders never double-appends.
TEST(DedupRecoveryTest, WindowSurvivesRecoverNodeAtParallelism8) {
  MiniClusterConfig cfg = SmallClusterConfig();
  cfg.recovery_parallelism = 8;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 4;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("r", opts);
  ASSERT_TRUE(info.ok());
  const ProducerId pid = 2;
  uint32_t epoch = cluster.coordinator().AllocateProducer(pid).second;
  constexpr ChunkSeq kPerStreamlet = 6;
  // seq space shared across streamlets per the wire contract: make each
  // (streamlet, seq) unique by striding.
  auto seq_of = [](StreamletId sl, ChunkSeq i) {
    return ChunkSeq(sl) * 100 + i;
  };
  for (StreamletId sl = 0; sl < 4; ++sl) {
    NodeId leader = info->streamlet_brokers[sl];
    for (ChunkSeq i = 1; i <= kPerStreamlet; ++i) {
      ASSERT_EQ(ProduceOne(cluster, leader, *info, sl, pid, epoch,
                           seq_of(sl, i),
                           "sl" + std::to_string(sl) + "-" +
                               std::to_string(i))
                    .status,
                StatusCode::kOk);
    }
  }
  const NodeId crashed = info->streamlet_brokers[0];
  cluster.CrashNode(crashed);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(crashed).ok());
  EXPECT_GE(cluster.coordinator().GetRecoveryStats().peak_fanout, 1u);
  auto fresh = cluster.coordinator().GetStreamInfo("r");
  ASSERT_TRUE(fresh.ok());

  // Replay the whole acked window at the current leaders, as a producer
  // with every ack lost would: nothing may append twice anywhere.
  uint64_t dup = 0;
  for (StreamletId sl = 0; sl < 4; ++sl) {
    NodeId leader = fresh->streamlet_brokers[sl];
    for (ChunkSeq i = 1; i <= kPerStreamlet; ++i) {
      auto resp = ProduceOne(cluster, leader, *fresh, sl, pid, epoch,
                             seq_of(sl, i), "retry");
      ASSERT_EQ(resp.status, StatusCode::kOk);
      EXPECT_EQ(resp.appended, 0u);
      EXPECT_EQ(resp.duplicates, 1u);
      ++dup;
    }
  }
  EXPECT_EQ(dup, uint64_t(4 * kPerStreamlet));
  for (StreamletId sl = 0; sl < 4; ++sl) {
    std::vector<std::string> values = ReadAllValues(cluster, "r", sl);
    ASSERT_EQ(values.size(), size_t(kPerStreamlet)) << "streamlet " << sl;
    std::set<std::string> unique(values.begin(), values.end());
    EXPECT_EQ(unique.size(), values.size()) << "streamlet " << sl;
  }
}

// --------------------------------------------- client resume vs oracle

// The real client pair: an exactly-once producer writes a bounded stream;
// an exactly-once consumer polls part of it, commits, and dies; its
// replacement (same consumer_id) resumes from the durable offsets. The
// oracle is the produced record set itself — the two consumer incarnations
// must partition it: nothing redelivered, nothing lost.
TEST(OffsetResumeTest, RestartedConsumerResumesWithoutRedelivery) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("eo", opts).ok());

  ProducerConfig pc;
  pc.stream = "eo";
  pc.producer_id = 1;
  pc.chunk_size = 256;  // many chunks, so the split lands mid-stream
  pc.exactly_once = true;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  EXPECT_GE(producer.session_epoch(), 1u);
  constexpr int kRecords = 400;
  std::multiset<std::string> produced;
  for (int i = 0; i < kRecords; ++i) {
    std::string value = "rec-" + std::to_string(i);
    ASSERT_TRUE(producer.Send(AsBytes(value)).ok());
    produced.insert(std::move(value));
  }
  ASSERT_TRUE(producer.Close().ok());
  ASSERT_TRUE(cluster.coordinator().SealStream("eo").ok());

  ConsumerConfig cc;
  cc.stream = "eo";
  cc.consumer_id = 7;
  cc.exactly_once = true;

  // First incarnation: poll roughly half, durably commit, die.
  std::multiset<std::string> first_half;
  uint32_t first_epoch = 0;
  {
    Consumer consumer(cc, cluster.network());
    ASSERT_TRUE(consumer.Connect().ok());
    first_epoch = consumer.session_epoch();
    EXPECT_GE(first_epoch, 1u);
    while (first_half.size() < kRecords / 2) {
      for (auto& rec : consumer.PollBlocking(32)) {
        first_half.emplace(reinterpret_cast<const char*>(rec.value.data()),
                          rec.value.size());
      }
    }
    ASSERT_TRUE(consumer.Commit().ok());
    EXPECT_EQ(consumer.GetStats().offset_commits, 1u);
    consumer.Close();
  }

  // Second incarnation, same id: resumes from the committed offsets.
  std::multiset<std::string> second_half;
  {
    Consumer consumer(cc, cluster.network());
    ASSERT_TRUE(consumer.Connect().ok());
    EXPECT_GT(consumer.session_epoch(), first_epoch);
    while (!consumer.Finished()) {
      for (auto& rec : consumer.PollBlocking(32)) {
        second_half.emplace(reinterpret_cast<const char*>(rec.value.data()),
                           rec.value.size());
      }
    }
    for (auto& rec : consumer.Poll(size_t(-1))) {
      second_half.emplace(reinterpret_cast<const char*>(rec.value.data()),
                         rec.value.size());
    }
    ASSERT_TRUE(consumer.Commit().ok());
    consumer.Close();
  }

  // Partition oracle: the incarnations split the produced set exactly.
  std::multiset<std::string> all(first_half);
  all.insert(second_half.begin(), second_half.end());
  EXPECT_EQ(all, produced);
  for (const std::string& v : first_half) {
    EXPECT_EQ(second_half.count(v), 0u) << "redelivered: " << v;
  }
}

// Without a prior commit the same consumer id starts from the beginning —
// found=false offsets must not be misread as position zero commits.
TEST(OffsetResumeTest, NoCommitMeansStartFromBeginning) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("nb", opts).ok());
  ProducerConfig pc;
  pc.stream = "nb";
  pc.exactly_once = true;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("v" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());
  ASSERT_TRUE(cluster.coordinator().SealStream("nb").ok());
  ConsumerConfig cc;
  cc.stream = "nb";
  cc.consumer_id = 3;
  cc.exactly_once = true;
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  size_t got = 0;
  while (!consumer.Finished()) got += consumer.PollBlocking(64).size();
  got += consumer.Poll(size_t(-1)).size();
  EXPECT_EQ(got, 10u);
  consumer.Close();
}

// Exactly-once preconditions are rejected at Connect, not discovered as
// silent redelivery later.
TEST(OffsetResumeTest, ExactlyOnceConfigPreconditionsEnforced) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("pre", opts).ok());
  ConsumerConfig cc;
  cc.stream = "pre";
  cc.exactly_once = true;
  cc.share_count = 2;  // shared groups have no single committed cursor
  Consumer consumer(cc, cluster.network());
  auto s = consumer.Connect();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  ConsumerConfig ok = cc;
  ok.share_count = 1;
  Consumer consumer2(ok, cluster.network());
  EXPECT_TRUE(consumer2.Connect().ok());
  consumer2.Close();
}

// ----------------------------------------------------- small chaos band

// A focused exactly-once chaos band across the fault axes (crashes,
// partitions, power loss ride in the generated schedules) and the
// orthogonal cluster shapes: zero user-record redelivery everywhere.
TEST(ExactlyOnceChaosBand, ZeroRedeliveryAcrossShapes) {
  const chaos::RunOptions shapes[] = {
      {.broker_shards = 1, .recovery_parallelism = 1, .exactly_once = true},
      {.broker_shards = 4, .recovery_parallelism = 8, .exactly_once = true},
  };
  uint64_t total_commits = 0;
  for (const auto& options : shapes) {
    for (uint64_t seed = 900; seed < 910; ++seed) {
      chaos::RunResult r = chaos::RunSeed(seed, 40, options);
      ASSERT_TRUE(r.ok) << "seed " << seed << " shards "
                        << options.broker_shards << ": " << r.failure;
      EXPECT_EQ(r.redelivered_chunks, 0u) << "seed " << seed;
      total_commits += r.offset_commits;
    }
  }
  EXPECT_GT(total_commits, 0u);
}

}  // namespace
}  // namespace kera
