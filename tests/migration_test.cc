// Tests for streamlet migration (§IV.A: "M represents the maximum number
// of nodes that can ingest and store a stream's records, ensuring
// horizontal scalability through migration of streamlets to new
// brokers"). Migration replays acknowledged data from the backups into
// the target — crash recovery without the crash.
#include <gtest/gtest.h>

#include <string>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    MiniClusterConfig cfg;
    cfg.nodes = 4;
    cfg.workers_per_node = 0;
    cfg.segment_size = 32 << 10;
    cfg.virtual_segment_capacity = 32 << 10;
    cluster_ = std::make_unique<MiniCluster>(cfg);
  }

  rpc::StreamInfo MakeStream(uint32_t streamlets, uint32_t r) {
    rpc::StreamOptions opts;
    opts.num_streamlets = streamlets;
    opts.replication_factor = r;
    auto info = cluster_->coordinator().CreateStream("m", opts);
    EXPECT_TRUE(info.ok());
    return *info;
  }

  void Produce(const rpc::StreamInfo& info, StreamletId sl, ProducerId p,
               ChunkSeq seq, const std::string& value,
               StatusCode expect = StatusCode::kOk,
               NodeId to = kInvalidNode) {
    ChunkBuilder b(1024);
    b.Start(info.stream, sl, p);
    ASSERT_TRUE(b.AppendValue(AsBytes(value)));
    auto chunk = b.Seal(seq);
    rpc::ProduceRequest req;
    req.producer = p;
    req.stream = info.stream;
    req.chunks = {chunk};
    NodeId leader = to != kInvalidNode ? to : info.streamlet_brokers[sl];
    EXPECT_EQ(cluster_->broker(leader).HandleProduce(req).status, expect);
  }

  std::vector<std::string> ReadAll(StreamId stream, StreamletId sl,
                                   NodeId leader) {
    std::vector<std::string> values;
    GroupId group = 0;
    uint64_t cursor = 0;
    int idle = 0;
    while (idle < 3) {
      rpc::ConsumeRequest req;
      req.stream = stream;
      req.entries = {{.streamlet = sl, .group = group, .start_chunk = cursor,
                      .max_chunks = 100}};
      auto resp = cluster_->broker(leader).HandleConsume(req);
      EXPECT_EQ(resp.status, StatusCode::kOk);
      const auto& e = resp.entries[0];
      for (const auto& cb : e.chunks) {
        auto view = ChunkView::Parse(cb);
        EXPECT_TRUE(view.ok());
        for (auto it = view->records(); !it.Done(); it.Next()) {
          auto v = it.record().value();
          values.emplace_back(reinterpret_cast<const char*>(v.data()),
                              v.size());
        }
      }
      cursor = e.next_chunk;
      if (e.group_closed) {
        ++group;
        cursor = 0;
        idle = 0;
      } else if (e.chunks.empty()) {
        ++idle;
      }
    }
    return values;
  }

  std::unique_ptr<MiniCluster> cluster_;
};

TEST_F(MigrationTest, DataSurvivesMigrationAndAppendsContinue) {
  auto info = MakeStream(2, 3);
  for (int i = 1; i <= 12; ++i) {
    Produce(info, 0, 1, ChunkSeq(i), "pre-" + std::to_string(i));
  }
  NodeId old_leader = info.streamlet_brokers[0];
  NodeId target = old_leader % 4 + 1;  // some other node
  auto replayed =
      cluster_->coordinator().MigrateStreamlet("m", 0, target);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(*replayed, 12u);

  auto fresh = cluster_->coordinator().GetStreamInfo("m");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->streamlet_brokers[0], target);
  // Streamlet 1 is untouched.
  EXPECT_EQ(fresh->streamlet_brokers[1], info.streamlet_brokers[1]);

  // All pre-migration records live on the target, in producer order.
  auto values = ReadAll(info.stream, 0, target);
  ASSERT_EQ(values.size(), 12u);
  for (int i = 1; i <= 12; ++i) {
    EXPECT_EQ(values[i - 1], "pre-" + std::to_string(i));
  }

  // New appends continue on the target with the next sequence (dedup
  // state was rebuilt by the replay).
  for (int i = 13; i <= 15; ++i) {
    Produce(*fresh, 0, 1, ChunkSeq(i), "post-" + std::to_string(i));
  }
  values = ReadAll(info.stream, 0, target);
  EXPECT_EQ(values.size(), 15u);
  EXPECT_EQ(values.back(), "post-15");
}

TEST_F(MigrationTest, OldLeaderRejectsAppendsAfterMigration) {
  auto info = MakeStream(1, 2);
  Produce(info, 0, 1, 1, "x");
  NodeId old_leader = info.streamlet_brokers[0];
  NodeId target = old_leader % 4 + 1;
  ASSERT_TRUE(
      cluster_->coordinator().MigrateStreamlet("m", 0, target).ok());
  // A stale producer hitting the old leader gets kNotLeader.
  Produce(info, 0, 1, 2, "stale", StatusCode::kNotLeader, old_leader);
  // Stale consumers can still read the durable prefix from the old copy.
  auto old_values = ReadAll(info.stream, 0, old_leader);
  EXPECT_EQ(old_values.size(), 1u);
}

TEST_F(MigrationTest, MigrationToSelfIsNoOp) {
  auto info = MakeStream(1, 2);
  Produce(info, 0, 1, 1, "x");
  auto replayed = cluster_->coordinator().MigrateStreamlet(
      "m", 0, info.streamlet_brokers[0]);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 0u);
}

TEST_F(MigrationTest, RejectsUnreplicatedStreams) {
  auto info = MakeStream(1, 1);
  Produce(info, 0, 1, 1, "x");
  NodeId target = info.streamlet_brokers[0] % 4 + 1;
  auto r = cluster_->coordinator().MigrateStreamlet("m", 0, target);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MigrationTest, RejectsBadArguments) {
  auto info = MakeStream(1, 2);
  EXPECT_FALSE(
      cluster_->coordinator().MigrateStreamlet("missing", 0, 2).ok());
  EXPECT_FALSE(cluster_->coordinator().MigrateStreamlet("m", 9, 2).ok());
  EXPECT_FALSE(cluster_->coordinator().MigrateStreamlet("m", 0, 99).ok());
}

TEST_F(MigrationTest, ChainedMigrationsPreserveData) {
  auto info = MakeStream(1, 3);
  for (int i = 1; i <= 8; ++i) {
    Produce(info, 0, 1, ChunkSeq(i), "v" + std::to_string(i));
  }
  // Hop the streamlet across every other node.
  NodeId current = info.streamlet_brokers[0];
  for (NodeId target = 1; target <= 4; ++target) {
    if (target == current) continue;
    auto r = cluster_->coordinator().MigrateStreamlet("m", 0, target);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    current = target;
  }
  auto fresh = cluster_->coordinator().GetStreamInfo("m");
  auto values = ReadAll(info.stream, 0, fresh->streamlet_brokers[0]);
  ASSERT_EQ(values.size(), 8u);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_EQ(values[i - 1], "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace kera
