// Golden tests freezing the wire formats byte-for-byte. The chunk and
// record layouts are shared between clients, brokers, backups and the
// on-disk flush format (paper: "clients and brokers share a binary data
// format", segments have "the same structure on both disk and memory"),
// so any layout change is a compatibility break and must fail here.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>

#include "rpc/messages.h"
#include "wire/chunk.h"
#include "storage/segment.h"
#include "wire/record.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string Hex(std::span<const std::byte> bytes) {
  std::string out;
  char buf[4];
  for (std::byte b : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", unsigned(b));
    out += buf;
  }
  return out;
}

TEST(WireGoldenTest, NonKeyedRecordLayout) {
  std::vector<std::byte> buf(64);
  size_t n = WriteRecord(buf, AsBytes("hi"));
  ASSERT_EQ(n, 14u);
  // checksum(4) | total_length=14 (4) | key_count=0 (2) | flags=0 (2) |
  // "hi"
  EXPECT_EQ(Hex(std::span(buf).first(n)),
            //  crc     len=0x0e   kc   flags 'h' 'i'
            "4941d611" "0e000000" "0000" "0000" "6869");
}

TEST(WireGoldenTest, KeyedRecordWithVersionAndTimestampLayout) {
  std::vector<std::byte> buf(128);
  RecordOptions opts;
  opts.version = 0x1122334455667788ull;
  opts.timestamp = 0x0102030405060708ull;
  std::span<const std::byte> keys[] = {AsBytes("k")};
  size_t n = WriteRecord(buf, keys, AsBytes("v"), opts);
  ASSERT_EQ(n, kRecordFixedHeader + 8 + 8 + 2 + 1 + 1);
  std::string hex = Hex(std::span(buf).first(n));
  // total_length = 32 = 0x20, key_count = 1, flags = 3 (version+ts)
  EXPECT_EQ(hex.substr(8, 8), "20000000");
  EXPECT_EQ(hex.substr(16, 4), "0100");
  EXPECT_EQ(hex.substr(20, 4), "0300");
  // little-endian version and timestamp
  EXPECT_EQ(hex.substr(24, 16), "8877665544332211");
  EXPECT_EQ(hex.substr(40, 16), "0807060504030201");
  // key length 1, key 'k', value 'v'
  EXPECT_EQ(hex.substr(56, 4), "0100");
  EXPECT_EQ(hex.substr(60, 2), "6b");
  EXPECT_EQ(hex.substr(62, 2), "76");
}

TEST(WireGoldenTest, ChunkHeaderLayout) {
  ChunkBuilder b(256);
  b.Start(/*stream=*/0x0102030405060708ull, /*streamlet=*/0x0A0B0C0D,
          /*producer=*/0x11223344);
  ASSERT_TRUE(b.AppendValue(AsBytes("x")));
  auto bytes = b.Seal(/*seq=*/0x5566778899AABBCCull);
  ASSERT_EQ(bytes.size(), kChunkHeaderSize + kRecordFixedHeader + 1);
  std::string hex = Hex(bytes);
  // payload_length = 13 at offset 4
  EXPECT_EQ(hex.substr(8, 8), "0d000000");
  // stream id little-endian at offset 8
  EXPECT_EQ(hex.substr(16, 16), "0807060504030201");
  // streamlet at offset 16, producer at offset 20
  EXPECT_EQ(hex.substr(32, 8), "0d0c0b0a");
  EXPECT_EQ(hex.substr(40, 8), "44332211");
  // chunk_seq at offset 24
  EXPECT_EQ(hex.substr(48, 16), "ccbbaa9988776655");
  // record_count = 1 at offset 32; group/segment/flags/index zero
  EXPECT_EQ(hex.substr(64, 8), "01000000");
  EXPECT_EQ(hex.substr(72, 24), std::string(24, '0'));
  EXPECT_EQ(hex.substr(96, 16), std::string(16, '0'));
}

TEST(WireGoldenTest, ChunkHeaderSizeIsFrozen) {
  // These constants are baked into every stored segment and every backup
  // file; changing them invalidates existing data.
  EXPECT_EQ(kChunkHeaderSize, 56u);
  EXPECT_EQ(kSegmentHeaderSize, 24u);
  EXPECT_EQ(kRecordFixedHeader, 12u);
  EXPECT_EQ(chunk_offsets::kChecksum, 0u);
  EXPECT_EQ(chunk_offsets::kPayloadLength, 4u);
  EXPECT_EQ(chunk_offsets::kStreamId, 8u);
  EXPECT_EQ(chunk_offsets::kStreamletId, 16u);
  EXPECT_EQ(chunk_offsets::kProducerId, 20u);
  EXPECT_EQ(chunk_offsets::kChunkSeq, 24u);
  EXPECT_EQ(chunk_offsets::kRecordCount, 32u);
  EXPECT_EQ(chunk_offsets::kGroupId, 36u);
  EXPECT_EQ(chunk_offsets::kSegmentId, 40u);
  EXPECT_EQ(chunk_offsets::kFlags, 44u);
  EXPECT_EQ(chunk_offsets::kGroupChunkIndex, 48u);
}

TEST(WireGoldenTest, RpcOpcodesAreFrozen) {
  EXPECT_EQ(uint16_t(rpc::Opcode::kProduce), 1);
  EXPECT_EQ(uint16_t(rpc::Opcode::kConsume), 2);
  EXPECT_EQ(uint16_t(rpc::Opcode::kCreateStream), 3);
  EXPECT_EQ(uint16_t(rpc::Opcode::kGetStreamInfo), 4);
  EXPECT_EQ(uint16_t(rpc::Opcode::kReplicate), 5);
  EXPECT_EQ(uint16_t(rpc::Opcode::kListRecoverySegments), 6);
  EXPECT_EQ(uint16_t(rpc::Opcode::kReadRecoverySegment), 7);
  EXPECT_EQ(uint16_t(rpc::Opcode::kSealStream), 8);
}

TEST(WireGoldenTest, ProduceRequestFrameLayout) {
  rpc::ProduceRequest req;
  req.producer = 0x0A;
  req.stream = 0x0B;
  req.recovery = false;
  std::vector<std::byte> chunk(4, std::byte{0xEE});
  req.chunks = {chunk};
  rpc::Writer body;
  req.Encode(body);
  auto frame = rpc::Frame(rpc::Opcode::kProduce, body);
  EXPECT_EQ(Hex(frame),
            // opcode=1 | producer=0x0a | stream=0x0b | recovery=0 |
            // nchunks=1 | len=4 | payload
            "0100" "0a000000" "0b00000000000000" "00" "01000000"
            "04000000" "eeeeeeee");
}

}  // namespace
}  // namespace kera
