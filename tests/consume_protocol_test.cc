// Protocol-level tests of the consume path: multi-entry requests spanning
// several groups of one streamlet, group discovery via groups_created,
// durability gating per entry, byte budgets across entries, and the
// sealed-stream signalling consumers rely on for end-of-stream.
#include <gtest/gtest.h>

#include <string>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

class ConsumeProtocolTest : public ::testing::Test {
 protected:
  ConsumeProtocolTest() {
    MiniClusterConfig cfg;
    cfg.nodes = 2;
    cfg.workers_per_node = 0;
    cfg.segment_size = 4 << 10;  // tiny: groups roll quickly
    cfg.segments_per_group = 1;
    cfg.virtual_segment_capacity = 16 << 10;
    cluster_ = std::make_unique<MiniCluster>(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.active_groups_per_streamlet = 2;  // Q=2: interleaved groups
    opts.replication_factor = 2;
    auto info = cluster_->coordinator().CreateStream("cp", opts);
    EXPECT_TRUE(info.ok());
    info_ = *info;
    leader_ = info_.streamlet_brokers[0];
  }

  void Produce(ProducerId p, ChunkSeq seq, const std::string& value) {
    ChunkBuilder b(1024);
    b.Start(info_.stream, 0, p);
    ASSERT_TRUE(b.AppendValue(AsBytes(value)));
    auto chunk = b.Seal(seq);
    rpc::ProduceRequest req;
    req.producer = p;
    req.stream = info_.stream;
    req.chunks = {chunk};
    ASSERT_EQ(cluster_->broker(leader_).HandleProduce(req).status,
              StatusCode::kOk);
  }

  rpc::ConsumeResponse Consume(std::vector<rpc::ConsumeEntryRequest> entries,
                               uint32_t max_bytes = 1 << 20) {
    rpc::ConsumeRequest req;
    req.stream = info_.stream;
    req.max_bytes = max_bytes;
    req.entries = std::move(entries);
    return cluster_->broker(leader_).HandleConsume(req);
  }

  std::unique_ptr<MiniCluster> cluster_;
  rpc::StreamInfo info_;
  NodeId leader_ = 0;
};

TEST_F(ConsumeProtocolTest, GroupsCreatedAnnouncesBothActiveSlots) {
  // Producers 1 and 2 hit slots 1 and 0, creating two groups.
  Produce(1, 1, "a");
  Produce(2, 1, "b");
  auto resp = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                        .max_chunks = 10}});
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.entries[0].groups_created, 2u);
  EXPECT_TRUE(resp.entries[0].group_exists);
}

TEST_F(ConsumeProtocolTest, MultiEntryRequestReadsGroupsInParallel) {
  // Fill both slots with several chunks; a tiny 4 KB segment (one per
  // group) forces group rollover on each slot.
  for (int i = 1; i <= 12; ++i) {
    Produce(1, ChunkSeq(i), "slot1-" + std::to_string(i) +
                                std::string(500, 'a'));
    Produce(2, ChunkSeq(i), "slot0-" + std::to_string(i) +
                                std::string(500, 'b'));
  }
  auto probe = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                         .max_chunks = 1}});
  uint32_t groups = probe.entries[0].groups_created;
  ASSERT_GT(groups, 2u);

  // One request covering every group; entries return independently.
  std::vector<rpc::ConsumeEntryRequest> entries;
  for (GroupId g = 0; g < groups; ++g) {
    entries.push_back({.streamlet = 0, .group = g, .start_chunk = 0,
                       .max_chunks = 100});
  }
  auto resp = Consume(std::move(entries));
  ASSERT_EQ(resp.status, StatusCode::kOk);
  ASSERT_EQ(resp.entries.size(), size_t(groups));
  uint64_t total = 0;
  int closed = 0;
  for (const auto& e : resp.entries) {
    EXPECT_TRUE(e.group_exists);
    total += e.chunks.size();
    if (e.group_closed) ++closed;
  }
  EXPECT_EQ(total, 24u);
  EXPECT_GE(closed, int(groups) - 2);  // only the two active groups open
}

TEST_F(ConsumeProtocolTest, ByteBudgetSharedAcrossEntries) {
  for (int i = 1; i <= 4; ++i) {
    Produce(1, ChunkSeq(i), std::string(500, 'x'));
    Produce(2, ChunkSeq(i), std::string(500, 'y'));
  }
  auto probe = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                         .max_chunks = 1}});
  uint32_t groups = probe.entries[0].groups_created;
  std::vector<rpc::ConsumeEntryRequest> entries;
  for (GroupId g = 0; g < groups; ++g) {
    entries.push_back({.streamlet = 0, .group = g, .start_chunk = 0,
                       .max_chunks = 100});
  }
  // Budget for roughly two chunks total (each ~570 B).
  auto resp = Consume(std::move(entries), /*max_bytes=*/1200);
  uint64_t total = 0;
  for (const auto& e : resp.entries) total += e.chunks.size();
  EXPECT_GE(total, 2u);   // at least one chunk per non-empty entry
  EXPECT_LE(total, uint64_t(groups) + 1);  // budget curbed the fan-out
}

TEST_F(ConsumeProtocolTest, SealedFlagPropagatesOnEveryEntry) {
  Produce(1, 1, "pre");
  ASSERT_TRUE(cluster_->coordinator().SealStream("cp").ok());
  auto resp = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                        .max_chunks = 10},
                       {.streamlet = 0, .group = 7, .start_chunk = 0,
                        .max_chunks = 10}});
  ASSERT_EQ(resp.entries.size(), 2u);
  EXPECT_TRUE(resp.entries[0].stream_sealed);
  EXPECT_TRUE(resp.entries[1].stream_sealed);
  EXPECT_FALSE(resp.entries[1].group_exists);  // group 7 will never exist
  // After the seal, the active groups are closed: drained entries say so.
  EXPECT_TRUE(resp.entries[0].group_closed);
}

TEST_F(ConsumeProtocolTest, UnknownStreamletYieldsEmptyEntry) {
  auto resp = Consume({{.streamlet = 9, .group = 0, .start_chunk = 0,
                        .max_chunks = 10}});
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_FALSE(resp.entries[0].group_exists);
  EXPECT_TRUE(resp.entries[0].chunks.empty());
}

TEST_F(ConsumeProtocolTest, StartBeyondDurableReturnsNothing) {
  Produce(1, 1, "only");
  auto resp = Consume({{.streamlet = 0, .group = 1, .start_chunk = 5,
                        .max_chunks = 10}});
  // Producer 1 maps to slot 1 -> group 0 or 1 depending on slot order;
  // whichever group it is, a cursor past the durable head returns nothing
  // and next_chunk echoes the request cursor.
  EXPECT_TRUE(resp.entries[0].chunks.empty());
  EXPECT_EQ(resp.entries[0].next_chunk, 5u);
}

}  // namespace
}  // namespace kera
