// Protocol-level tests of the consume path: multi-entry requests spanning
// several groups of one streamlet, group discovery via groups_created,
// durability gating per entry, byte budgets across entries, and the
// sealed-stream signalling consumers rely on for end-of-stream.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

class ConsumeProtocolTest : public ::testing::Test {
 protected:
  ConsumeProtocolTest() {
    MiniClusterConfig cfg;
    cfg.nodes = 2;
    cfg.workers_per_node = 0;
    cfg.segment_size = 4 << 10;  // tiny: groups roll quickly
    cfg.segments_per_group = 1;
    cfg.virtual_segment_capacity = 16 << 10;
    cluster_ = std::make_unique<MiniCluster>(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.active_groups_per_streamlet = 2;  // Q=2: interleaved groups
    opts.replication_factor = 2;
    auto info = cluster_->coordinator().CreateStream("cp", opts);
    EXPECT_TRUE(info.ok());
    info_ = *info;
    leader_ = info_.streamlet_brokers[0];
  }

  void Produce(ProducerId p, ChunkSeq seq, const std::string& value) {
    ChunkBuilder b(1024);
    b.Start(info_.stream, 0, p);
    ASSERT_TRUE(b.AppendValue(AsBytes(value)));
    auto chunk = b.Seal(seq);
    rpc::ProduceRequest req;
    req.producer = p;
    req.stream = info_.stream;
    req.chunks = {chunk};
    ASSERT_EQ(cluster_->broker(leader_).HandleProduce(req).status,
              StatusCode::kOk);
  }

  rpc::ConsumeResponse Consume(std::vector<rpc::ConsumeEntryRequest> entries,
                               uint32_t max_bytes = 1 << 20) {
    rpc::ConsumeRequest req;
    req.stream = info_.stream;
    req.max_bytes = max_bytes;
    req.entries = std::move(entries);
    return cluster_->broker(leader_).HandleConsume(req);
  }

  std::unique_ptr<MiniCluster> cluster_;
  rpc::StreamInfo info_;
  NodeId leader_ = 0;
};

TEST_F(ConsumeProtocolTest, GroupsCreatedAnnouncesBothActiveSlots) {
  // Producers 1 and 2 hit slots 1 and 0, creating two groups.
  Produce(1, 1, "a");
  Produce(2, 1, "b");
  auto resp = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                        .max_chunks = 10}});
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.entries[0].groups_created, 2u);
  EXPECT_TRUE(resp.entries[0].group_exists);
}

TEST_F(ConsumeProtocolTest, MultiEntryRequestReadsGroupsInParallel) {
  // Fill both slots with several chunks; a tiny 4 KB segment (one per
  // group) forces group rollover on each slot.
  for (int i = 1; i <= 12; ++i) {
    Produce(1, ChunkSeq(i), "slot1-" + std::to_string(i) +
                                std::string(500, 'a'));
    Produce(2, ChunkSeq(i), "slot0-" + std::to_string(i) +
                                std::string(500, 'b'));
  }
  auto probe = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                         .max_chunks = 1}});
  uint32_t groups = probe.entries[0].groups_created;
  ASSERT_GT(groups, 2u);

  // One request covering every group; entries return independently.
  std::vector<rpc::ConsumeEntryRequest> entries;
  for (GroupId g = 0; g < groups; ++g) {
    entries.push_back({.streamlet = 0, .group = g, .start_chunk = 0,
                       .max_chunks = 100});
  }
  auto resp = Consume(std::move(entries));
  ASSERT_EQ(resp.status, StatusCode::kOk);
  ASSERT_EQ(resp.entries.size(), size_t(groups));
  uint64_t total = 0;
  int closed = 0;
  for (const auto& e : resp.entries) {
    EXPECT_TRUE(e.group_exists);
    total += e.chunks.size();
    if (e.group_closed) ++closed;
  }
  EXPECT_EQ(total, 24u);
  EXPECT_GE(closed, int(groups) - 2);  // only the two active groups open
}

TEST_F(ConsumeProtocolTest, ByteBudgetSharedAcrossEntries) {
  for (int i = 1; i <= 4; ++i) {
    Produce(1, ChunkSeq(i), std::string(500, 'x'));
    Produce(2, ChunkSeq(i), std::string(500, 'y'));
  }
  auto probe = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                         .max_chunks = 1}});
  uint32_t groups = probe.entries[0].groups_created;
  std::vector<rpc::ConsumeEntryRequest> entries;
  for (GroupId g = 0; g < groups; ++g) {
    entries.push_back({.streamlet = 0, .group = g, .start_chunk = 0,
                       .max_chunks = 100});
  }
  // Budget for roughly two chunks total (each ~570 B).
  auto resp = Consume(std::move(entries), /*max_bytes=*/1200);
  uint64_t total = 0;
  for (const auto& e : resp.entries) total += e.chunks.size();
  EXPECT_GE(total, 2u);   // at least one chunk per non-empty entry
  EXPECT_LE(total, uint64_t(groups) + 1);  // budget curbed the fan-out
}

TEST_F(ConsumeProtocolTest, SealedFlagPropagatesOnEveryEntry) {
  Produce(1, 1, "pre");
  ASSERT_TRUE(cluster_->coordinator().SealStream("cp").ok());
  auto resp = Consume({{.streamlet = 0, .group = 0, .start_chunk = 0,
                        .max_chunks = 10},
                       {.streamlet = 0, .group = 7, .start_chunk = 0,
                        .max_chunks = 10}});
  ASSERT_EQ(resp.entries.size(), 2u);
  EXPECT_TRUE(resp.entries[0].stream_sealed);
  EXPECT_TRUE(resp.entries[1].stream_sealed);
  EXPECT_FALSE(resp.entries[1].group_exists);  // group 7 will never exist
  // After the seal, the active groups are closed: drained entries say so.
  EXPECT_TRUE(resp.entries[0].group_closed);
}

TEST_F(ConsumeProtocolTest, UnknownStreamletYieldsEmptyEntry) {
  auto resp = Consume({{.streamlet = 9, .group = 0, .start_chunk = 0,
                        .max_chunks = 10}});
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_FALSE(resp.entries[0].group_exists);
  EXPECT_TRUE(resp.entries[0].chunks.empty());
}

TEST_F(ConsumeProtocolTest, StartBeyondDurableReturnsNothing) {
  Produce(1, 1, "only");
  auto resp = Consume({{.streamlet = 0, .group = 1, .start_chunk = 5,
                        .max_chunks = 10}});
  // Producer 1 maps to slot 1 -> group 0 or 1 depending on slot order;
  // whichever group it is, a cursor past the durable head returns nothing
  // and next_chunk echoes the request cursor.
  EXPECT_TRUE(resp.entries[0].chunks.empty());
  EXPECT_EQ(resp.entries[0].next_chunk, 5u);
}

TEST(ConsumeWireCompatTest, OldFormatRequestDecodesWithImmediateReturn) {
  // A pre-long-poll sender stops after the entries; the decoder must
  // accept the short frame and default to "return immediately".
  rpc::Writer w;
  w.U64(/*stream=*/7);
  w.U32(/*max_bytes=*/4096);
  w.U32(/*entries=*/1);
  w.U32(/*streamlet=*/0);
  w.U32(/*group=*/3);
  w.U64(/*start_chunk=*/5);
  w.U32(/*max_chunks=*/2);
  auto bytes = std::move(w).Take();
  rpc::Reader r(bytes);
  auto req = rpc::ConsumeRequest::Decode(r);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->stream, 7u);
  ASSERT_EQ(req->entries.size(), 1u);
  EXPECT_EQ(req->entries[0].group, 3u);
  EXPECT_EQ(req->max_wait_us, 0u);
  EXPECT_EQ(req->min_bytes, 0u);
}

TEST(ConsumeWireCompatTest, LongPollFieldsRoundTrip) {
  rpc::ConsumeRequest req;
  req.stream = 9;
  req.max_bytes = 1 << 20;
  req.entries.push_back({.streamlet = 1, .group = 2, .start_chunk = 3,
                         .max_chunks = 4});
  req.max_wait_us = 250'000;
  req.min_bytes = 64 << 10;
  rpc::Writer w;
  req.Encode(w);
  auto bytes = std::move(w).Take();
  rpc::Reader r(bytes);
  auto back = rpc::ConsumeRequest::Decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->max_wait_us, 250'000u);
  EXPECT_EQ(back->min_bytes, 64u << 10);
  ASSERT_EQ(back->entries.size(), 1u);
  EXPECT_EQ(back->entries[0].start_chunk, 3u);
}

TEST_F(ConsumeProtocolTest, LongPollWakesWhenDataTurnsDurable) {
  // Park a consume request on an empty stream, then produce: the
  // durability-gate advance must complete the parked request long before
  // its 5 s deadline.
  rpc::ConsumeRequest req;
  req.stream = info_.stream;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 10}};
  req.max_wait_us = 5'000'000;
  rpc::ConsumeResponse resp;
  auto start = std::chrono::steady_clock::now();
  std::thread waiter(
      [&] { resp = cluster_->broker(leader_).HandleConsume(req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Produce(2, 1, "wakes the long-poller");
  waiter.join();
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(resp.status, StatusCode::kOk);
  uint64_t total = 0;
  for (const auto& e : resp.entries) total += e.chunks.size();
  EXPECT_EQ(total, 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(4));
  EXPECT_GE(cluster_->broker(leader_).GetStats().consume_long_polls, 1u);
}

TEST(ConsumeLongPollUnreplicatedTest, ProduceWakesParkedLongPollWithR1) {
  // Regression: with replication_factor=1 chunks are durable at append
  // time and no replication batch ever ships, so the batch-completion
  // wakeup never fires — HandleProduce itself must notify the parked
  // long-polls, or they sit until timeout.
  MiniClusterConfig cfg;
  cfg.nodes = 1;
  cfg.workers_per_node = 0;
  auto cluster = std::make_unique<MiniCluster>(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 1;
  auto info = cluster->coordinator().CreateStream("r1", opts);
  ASSERT_TRUE(info.ok());
  const NodeId leader = info->streamlet_brokers[0];

  rpc::ConsumeRequest req;
  req.stream = info->stream;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 10}};
  req.max_wait_us = 5'000'000;
  rpc::ConsumeResponse resp;
  auto start = std::chrono::steady_clock::now();
  std::thread waiter(
      [&] { resp = cluster->broker(leader).HandleConsume(req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ChunkBuilder b(1024);
  b.Start(info->stream, 0, /*producer=*/1);
  ASSERT_TRUE(b.AppendValue(AsBytes("wakes the unreplicated poller")));
  rpc::ProduceRequest preq;
  preq.producer = 1;
  preq.stream = info->stream;
  preq.chunks = {b.Seal(1)};
  ASSERT_EQ(cluster->broker(leader).HandleProduce(preq).status,
            StatusCode::kOk);

  waiter.join();
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(resp.status, StatusCode::kOk);
  uint64_t total = 0;
  for (const auto& e : resp.entries) total += e.chunks.size();
  EXPECT_EQ(total, 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(4));
  EXPECT_GE(cluster->broker(leader).GetStats().consume_long_polls, 1u);
}

TEST_F(ConsumeProtocolTest, LongPollTimesOutEmptyOnIdleStream) {
  rpc::ConsumeRequest req;
  req.stream = info_.stream;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 10}};
  req.max_wait_us = 100'000;
  auto start = std::chrono::steady_clock::now();
  auto resp = cluster_->broker(leader_).HandleConsume(req);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(resp.status, StatusCode::kOk);
  for (const auto& e : resp.entries) EXPECT_TRUE(e.chunks.empty());
  EXPECT_GE(elapsed, std::chrono::milliseconds(80));
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST_F(ConsumeProtocolTest, MinBytesHoldsRequestUntilTimeoutThenReturnsData) {
  // One small chunk is durable but below min_bytes: the request parks and
  // the timeout response still carries the data it gathered.
  Produce(2, 1, "small");
  rpc::ConsumeRequest req;
  req.stream = info_.stream;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 10},
                 {.streamlet = 0, .group = 1, .start_chunk = 0,
                  .max_chunks = 10}};
  req.max_wait_us = 100'000;
  req.min_bytes = 1 << 20;  // far more than one small chunk
  auto start = std::chrono::steady_clock::now();
  auto resp = cluster_->broker(leader_).HandleConsume(req);
  auto elapsed = std::chrono::steady_clock::now() - start;
  uint64_t total = 0;
  for (const auto& e : resp.entries) total += e.chunks.size();
  EXPECT_EQ(total, 1u);
  EXPECT_GE(elapsed, std::chrono::milliseconds(80));
}

TEST_F(ConsumeProtocolTest, SealWakesParkedLongPoll) {
  rpc::ConsumeRequest req;
  req.stream = info_.stream;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 10}};
  req.max_wait_us = 5'000'000;
  rpc::ConsumeResponse resp;
  auto start = std::chrono::steady_clock::now();
  std::thread waiter(
      [&] { resp = cluster_->broker(leader_).HandleConsume(req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(cluster_->coordinator().SealStream("cp").ok());
  waiter.join();
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_TRUE(resp.entries[0].stream_sealed);
  EXPECT_LT(elapsed, std::chrono::seconds(4));
}

TEST(ConsumeLongPollCapTest, ServerCapsClientWait) {
  // A client asking for a 10 s park is clamped to the broker-side cap.
  MiniClusterConfig cfg;
  cfg.nodes = 1;
  cfg.workers_per_node = 0;
  cfg.max_consume_wait_us = 50'000;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 1;
  auto info = cluster.coordinator().CreateStream("cap", opts);
  ASSERT_TRUE(info.ok());
  rpc::ConsumeRequest req;
  req.stream = info->stream;
  req.max_bytes = 1 << 20;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 10}};
  req.max_wait_us = 10'000'000;
  auto start = std::chrono::steady_clock::now();
  auto resp = cluster.broker(info->streamlet_brokers[0]).HandleConsume(req);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

}  // namespace
}  // namespace kera
