// Tests for the producer/consumer clients against a threaded MiniCluster.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

MiniClusterConfig ThreadedConfig() {
  MiniClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  cfg.broker_memory_bytes = 64 << 20;
  return cfg;
}

rpc::StreamInfo MakeStream(MiniCluster& cluster, const std::string& name,
                           uint32_t streamlets, uint32_t r) {
  rpc::StreamOptions opts;
  opts.num_streamlets = streamlets;
  opts.replication_factor = r;
  auto info = cluster.coordinator().CreateStream(name, opts);
  EXPECT_TRUE(info.ok());
  return *info;
}

TEST(ProducerTest, ConnectFailsForUnknownStream) {
  MiniCluster cluster(ThreadedConfig());
  ProducerConfig pc;
  pc.stream = "missing";
  Producer producer(pc, cluster.network());
  auto s = producer.Connect();
  EXPECT_FALSE(s.ok());
}

TEST(ProducerTest, SendFlushDeliversAllRecords) {
  MiniCluster cluster(ThreadedConfig());
  auto info = MakeStream(cluster, "s", 2, 2);

  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "s";
  pc.chunk_size = 1024;
  pc.linger_us = 100000;  // rely on chunk fill + flush, not linger
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());

  constexpr int kRecords = 5000;
  for (int i = 0; i < kRecords; ++i) {
    std::string v = "record-" + std::to_string(i);
    ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
  }
  ASSERT_TRUE(producer.Flush().ok());
  auto stats = producer.GetStats();
  EXPECT_EQ(stats.records_sent, uint64_t(kRecords));
  EXPECT_EQ(stats.chunks_acked, stats.chunks_sent);
  EXPECT_EQ(stats.request_failures, 0u);
  EXPECT_GT(stats.requests_sent, 0u);
  // Chunks landed on brokers, durably.
  auto totals = cluster.TotalBrokerStats();
  EXPECT_EQ(totals.chunks_appended, stats.chunks_sent);
  ASSERT_TRUE(producer.Close().ok());
}

TEST(ProducerTest, LingerPushesPartialChunks) {
  MiniCluster cluster(ThreadedConfig());
  MakeStream(cluster, "s", 1, 1);
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 64 << 10;  // never fills from one record
  pc.linger_us = 500;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  ASSERT_TRUE(producer.Send(AsBytes(std::string("lonely"))).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // The next Send triggers the linger check and seals the first chunk.
  ASSERT_TRUE(producer.Send(AsBytes(std::string("second"))).ok());
  ASSERT_TRUE(producer.Flush().ok());
  EXPECT_GE(producer.GetStats().chunks_sent, 2u);
  ASSERT_TRUE(producer.Close().ok());
}

TEST(ClientRoundTripTest, ProduceThenConsumeEverything) {
  MiniCluster cluster(ThreadedConfig());
  auto info = MakeStream(cluster, "s", 2, 2);

  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "s";
  pc.chunk_size = 1024;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());

  constexpr int kRecords = 2000;
  for (int i = 0; i < kRecords; ++i) {
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());

  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(256)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(kRecords));
  // No duplicates, no losses: every distinct value exactly once.
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(received.count("v" + std::to_string(i)), 1u) << i;
  }
  EXPECT_EQ(consumer.GetStats().checksum_failures, 0u);
}

TEST(ClientRoundTripTest, KeyedRecordsLandOnOneStreamlet) {
  MiniCluster cluster(ThreadedConfig());
  MakeStream(cluster, "s", 4, 1);
  ProducerConfig pc;
  pc.stream = "s";
  pc.partitioner = Partitioner::kKeyHash;
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(producer
                    .SendKeyed(AsBytes(std::string("same-key")),
                               AsBytes(std::string("v") + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::set<StreamletId> seen;
  size_t total = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (total < 200 && std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(64)) {
      seen.insert(rec.streamlet);
      ++total;
    }
  }
  consumer.Close();
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(seen.size(), 1u);  // one key -> one streamlet
}

TEST(ClientRoundTripTest, GroupSharingConsumersPartitionTheStream) {
  // Vertical scalability: two consumers share ONE streamlet at group
  // granularity (group_id mod 2). Together they must see every record
  // exactly once; individually they only see their own groups.
  MiniClusterConfig cfg = ThreadedConfig();
  cfg.segment_size = 4 << 10;  // tiny segments => many groups
  cfg.segments_per_group = 2;
  MiniCluster cluster(cfg);
  MakeStream(cluster, "s", 1, 2);

  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 1024;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 3000;
  for (int i = 0; i < kRecords; ++i) {
    std::string v(100, 'g');
    v += std::to_string(i);
    ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  // The stream must have rolled several groups for sharing to matter.
  auto info = cluster.coordinator().GetStreamInfo("s");
  ASSERT_TRUE(info.ok());
  Stream* stream =
      cluster.broker(info->streamlet_brokers[0]).GetStream(info->stream);
  ASSERT_GT(stream->GetStreamlet(0)->next_group_id(), 3u);

  std::multiset<std::string> received;
  std::mutex mu;
  std::vector<std::set<GroupId>> member_groups(2);
  std::atomic<int> total{0};
  std::vector<std::thread> members;
  for (uint32_t m = 0; m < 2; ++m) {
    members.emplace_back([&, m] {
      ConsumerConfig cc;
      cc.stream = "s";
      cc.share_count = 2;
      cc.share_index = m;
      Consumer consumer(cc, cluster.network());
      ASSERT_TRUE(consumer.Connect().ok());
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (total.load() < kRecords &&
             std::chrono::steady_clock::now() < deadline) {
        auto records = consumer.Poll(256);
        if (records.empty()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        for (auto& rec : records) {
          EXPECT_EQ(rec.group % 2, m);  // only its own groups
          member_groups[m].insert(rec.group);
          received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                           rec.value.size());
          total.fetch_add(1);
        }
      }
      consumer.Close();
    });
  }
  for (auto& t : members) t.join();
  ASSERT_EQ(received.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    std::string v(100, 'g');
    v += std::to_string(i);
    ASSERT_EQ(received.count(v), 1u) << i;
  }
  // Both members actually worked (several groups each).
  EXPECT_GE(member_groups[0].size(), 1u);
  EXPECT_GE(member_groups[1].size(), 1u);
}

TEST(ClientRoundTripTest, BadGroupShareConfigRejected) {
  MiniCluster cluster(ThreadedConfig());
  MakeStream(cluster, "s", 1, 1);
  ConsumerConfig cc;
  cc.stream = "s";
  cc.share_count = 2;
  cc.share_index = 5;  // out of range
  Consumer consumer(cc, cluster.network());
  EXPECT_FALSE(consumer.Connect().ok());
}

TEST(ClientRoundTripTest, ConsumerSeesRecordsInOrderPerGroup) {
  MiniCluster cluster(ThreadedConfig());
  MakeStream(cluster, "s", 1, 2);
  ProducerConfig pc;
  pc.stream = "s";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 1000;
  for (int i = 0; i < kRecords; ++i) {
    std::string v = std::to_string(i);
    ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  // Single producer, single streamlet, Q=1: total order must hold within
  // each group and group ids advance monotonically.
  long expected = 0;
  std::pair<GroupId, uint64_t> last_pos{0, 0};
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (expected < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      std::string v(reinterpret_cast<const char*>(rec.value.data()),
                    rec.value.size());
      ASSERT_EQ(std::stol(v), expected);
      std::pair<GroupId, uint64_t> pos{rec.group, rec.chunk_index};
      ASSERT_GE(pos, last_pos);
      last_pos = pos;
      ++expected;
    }
  }
  consumer.Close();
  EXPECT_EQ(expected, kRecords);
}

}  // namespace
}  // namespace kera
