// Property-based tests of the virtual log under randomized interleavings:
// chunks from many groups share one vlog while random replication
// schedules (including aborts and evacuations) drive durability.
// Invariants (DESIGN.md §6):
//   - atomic replication: the durable header always sits on a chunk
//     boundary; durable counts never regress;
//   - per-group order: each group's chunks become durable in index order;
//   - the checksum chain over chunk checksums matches an independent
//     recomputation for every batch;
//   - aborts and backup-failure evacuations never lose or duplicate a
//     chunk.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"
#include "storage/group.h"
#include "storage/memory_manager.h"
#include "vlog/virtual_log.h"
#include "wire/chunk.h"

namespace kera {
namespace {

struct VlogSweep {
  size_t virtual_capacity;
  size_t max_batch_bytes;
  uint32_t groups;
  int chunks;
  uint64_t seed;
};

class VlogProperty : public ::testing::TestWithParam<VlogSweep> {};

TEST_P(VlogProperty, RandomScheduleKeepsInvariants) {
  const VlogSweep sweep = GetParam();
  Xoshiro256 rng(sweep.seed);

  MemoryManager mm(size_t(64) << 20, 256 << 10);
  std::vector<std::unique_ptr<Group>> groups;
  for (uint32_t g = 0; g < sweep.groups; ++g) {
    groups.push_back(std::make_unique<Group>(mm, /*stream=*/g + 1,
                                             /*streamlet=*/0, /*id=*/0,
                                             /*max_segments=*/64));
  }

  VirtualLogConfig cfg;
  cfg.virtual_segment_capacity = sweep.virtual_capacity;
  cfg.replication_factor = 3;
  cfg.max_batch_bytes = sweep.max_batch_bytes;
  VirtualLog vlog(1, cfg, [&rng](VirtualSegmentId) {
    // Two random distinct backups out of 10..14.
    NodeId a = NodeId(10 + rng.NextBounded(5));
    NodeId b = a;
    while (b == a) b = NodeId(10 + rng.NextBounded(5));
    return std::vector<NodeId>{a, b};
  });

  ChunkBuilder builder(2048);
  std::map<uint32_t, int> appended_per_group;
  int appended = 0;
  int completed_chunks = 0;

  auto append_one = [&] {
    uint32_t g = uint32_t(rng.NextBounded(sweep.groups));
    builder.Start(g + 1, 0, /*producer=*/1);
    std::vector<std::byte> value(rng.NextBounded(900) + 10);
    for (auto& byte : value) byte = std::byte(rng.Next());
    ASSERT_TRUE(builder.AppendValue(value));
    auto bytes = builder.Seal(ChunkSeq(appended + 1));
    auto r = groups[g]->AppendChunk(bytes);
    ASSERT_TRUE(r.ok());
    auto view = ChunkView::Parse(
        r->segment->Bytes(r->offset, r->length));
    ChunkRef ref;
    ref.loc = *r;
    ref.group = groups[g].get();
    ref.stream = g + 1;
    ref.payload_checksum = view->payload_checksum();
    vlog.Append(ref);
    ++appended;
    ++appended_per_group[g];
  };

  // Randomly interleave appends and replication steps.
  while (appended < sweep.chunks || completed_chunks < appended) {
    bool can_append = appended < sweep.chunks;
    uint64_t dice = rng.NextBounded(10);
    if (can_append && dice < 5) {
      append_one();
      continue;
    }
    auto batch = vlog.Poll();
    if (!batch.has_value()) {
      if (can_append) append_one();
      continue;
    }
    // Verify the checksum chain independently for this batch.
    uint32_t crc = 0;
    bool found_segment = false;
    for (const VirtualSegment* seg : vlog.Segments()) {
      if (seg->id() != batch->vseg) continue;
      found_segment = true;
      for (size_t i = 0; i < batch->start_ref + batch->refs.size(); ++i) {
        uint32_t c = seg->ref(i).payload_checksum;
        crc = Crc32c(&c, sizeof(c), crc);
      }
    }
    ASSERT_TRUE(found_segment);
    EXPECT_EQ(crc, batch->checksum_after);

    if (dice == 9) {
      vlog.Abort(*batch);  // simulated backup failure; will retry
    } else {
      vlog.Complete(*batch);
      completed_chunks += int(batch->refs.size());
    }

    // Durable headers sit on chunk boundaries (atomicity).
    for (const VirtualSegment* seg : vlog.Segments()) {
      uint64_t boundary = 0;
      bool on_boundary = seg->durable_header() == 0;
      for (size_t i = 0; i < seg->ref_count(); ++i) {
        boundary += seg->ref(i).loc.length;
        if (boundary == seg->durable_header()) on_boundary = true;
      }
      EXPECT_TRUE(on_boundary);
      EXPECT_LE(seg->durable_header(), seg->header());
    }
  }

  // Every chunk durable; per-group durable counts match appends.
  for (uint32_t g = 0; g < sweep.groups; ++g) {
    EXPECT_EQ(groups[g]->durable_chunk_count(),
              uint64_t(appended_per_group[g]));
    EXPECT_EQ(groups[g]->chunk_count(), uint64_t(appended_per_group[g]));
  }
  auto stats = vlog.GetStats();
  EXPECT_EQ(stats.chunks_appended, uint64_t(sweep.chunks));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, VlogProperty,
    ::testing::Values(VlogSweep{4 << 10, 64 << 10, 1, 100, 1},
                      VlogSweep{8 << 10, 2 << 10, 4, 200, 2},
                      VlogSweep{64 << 10, 8 << 10, 8, 300, 3},
                      VlogSweep{1 << 20, 1 << 20, 16, 400, 4},
                      VlogSweep{2 << 10, 1 << 10, 3, 150, 5}),
    [](const ::testing::TestParamInfo<VlogSweep>& info) {
      char name[80];
      std::snprintf(name, sizeof(name), "cap%zu_batch%zu_g%u_n%d",
                    info.param.virtual_capacity, info.param.max_batch_bytes,
                    info.param.groups, info.param.chunks);
      return std::string(name);
    });

// Windowed replication property: with several batches in flight, random
// out-of-order completions and aborts must keep the durable prefix
// contiguous (headers on chunk boundaries, never regressing) and
// eventually make every chunk durable exactly once.
TEST(VlogWindowedProperty, OutOfOrderCompletionKeepsInvariants) {
  for (uint32_t window : {2u, 4u, 8u}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Xoshiro256 rng(seed * 977 + window);
      MemoryManager mm(size_t(64) << 20, 256 << 10);
      Group group(mm, 1, 0, 0, 64);
      VirtualLogConfig cfg;
      cfg.virtual_segment_capacity = 8 << 10;
      cfg.replication_factor = 3;
      cfg.max_batch_bytes = 1 << 10;
      cfg.replication_window = window;
      VirtualLog vlog(1, cfg, [](VirtualSegmentId v) {
        return std::vector<NodeId>{NodeId(10 + v % 3), NodeId(13)};
      });

      ChunkBuilder builder(2048);
      int appended = 0;
      const int kChunks = 200;
      auto append_one = [&] {
        builder.Start(1, 0, 1);
        std::vector<std::byte> value(rng.NextBounded(700) + 10);
        ASSERT_TRUE(builder.AppendValue(value));
        auto bytes = builder.Seal(ChunkSeq(appended + 1));
        auto r = group.AppendChunk(bytes);
        ASSERT_TRUE(r.ok());
        ChunkRef ref;
        ref.loc = *r;
        ref.group = &group;
        ref.stream = 1;
        auto view =
            ChunkView::Parse(r->segment->Bytes(r->offset, r->length));
        ref.payload_checksum = view->payload_checksum();
        vlog.Append(ref);
        ++appended;
      };

      std::vector<ReplicationBatch> inflight;  // issue order
      std::map<VirtualSegmentId, uint64_t> durable_seen;
      auto check_invariants = [&] {
        for (const VirtualSegment* seg : vlog.Segments()) {
          // Durable header sits on a chunk boundary and never regresses.
          uint64_t boundary = 0;
          bool on_boundary = seg->durable_header() == 0;
          for (size_t i = 0; i < seg->ref_count(); ++i) {
            boundary += seg->ref(i).loc.length;
            if (boundary == seg->durable_header()) on_boundary = true;
          }
          EXPECT_TRUE(on_boundary);
          EXPECT_LE(seg->durable_header(), seg->header());
          uint64_t& prev = durable_seen[seg->id()];
          EXPECT_GE(seg->durable_header(), prev);
          prev = seg->durable_header();
        }
      };

      while (appended < kChunks ||
             group.durable_chunk_count() < uint64_t(appended)) {
        uint64_t dice = rng.NextBounded(10);
        if (appended < kChunks && dice < 4) {
          append_one();
          continue;
        }
        if (dice < 7 || inflight.empty()) {
          auto batch = vlog.Poll();
          if (batch.has_value()) {
            inflight.push_back(std::move(*batch));
          } else if (inflight.empty() && appended < kChunks) {
            append_one();
          }
          continue;
        }
        // Complete or abort a RANDOM in-flight batch (out of order).
        size_t pick = rng.NextBounded(inflight.size());
        if (dice == 9) {
          // Aborting drops the picked batch and the whole issued suffix.
          vlog.Abort(inflight[pick]);
          inflight.erase(inflight.begin() + long(pick), inflight.end());
        } else {
          vlog.Complete(inflight[pick]);
          inflight.erase(inflight.begin() + long(pick));
        }
        check_invariants();
      }

      EXPECT_EQ(group.durable_chunk_count(), uint64_t(kChunks));
      EXPECT_EQ(group.chunk_count(), uint64_t(kChunks));
      auto stats = vlog.GetStats();
      EXPECT_EQ(stats.chunks_appended, uint64_t(kChunks));
      EXPECT_LE(stats.max_inflight_batches, uint64_t(window));
      if (window > 1) EXPECT_GT(stats.max_inflight_batches, 1u);
    }
  }
}

// Evacuation property: moving unreplicated refs to a fresh segment keeps
// the exact multiset of chunks and their per-group relative order.
TEST(VlogEvacuationProperty, PreservesChunksAndOrder) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    MemoryManager mm(size_t(16) << 20, 256 << 10);
    Group group(mm, 1, 0, 0, 64);
    VirtualLogConfig cfg;
    cfg.virtual_segment_capacity = 4 << 10;  // force several segments
    cfg.replication_factor = 2;
    VirtualLog vlog(0, cfg,
                    [](VirtualSegmentId v) {
                      return std::vector<NodeId>{NodeId(10 + v % 3)};
                    });

    ChunkBuilder builder(1024);
    const int kChunks = 60;
    for (int i = 0; i < kChunks; ++i) {
      builder.Start(1, 0, 1);
      std::vector<std::byte> value(rng.NextBounded(700) + 10);
      ASSERT_TRUE(builder.AppendValue(value));
      auto bytes = builder.Seal(ChunkSeq(i + 1));
      auto r = group.AppendChunk(bytes);
      ASSERT_TRUE(r.ok());
      ChunkRef ref;
      ref.loc = *r;
      ref.group = &group;
      ref.stream = 1;
      auto view = ChunkView::Parse(r->segment->Bytes(r->offset, r->length));
      ref.payload_checksum = view->payload_checksum();
      vlog.Append(ref);
    }

    // Replicate a random prefix, then evacuate a random segment.
    int to_complete = int(rng.NextBounded(3));
    for (int i = 0; i < to_complete; ++i) {
      auto batch = vlog.Poll();
      if (!batch) break;
      vlog.Complete(*batch);
    }
    auto segments = vlog.Segments();
    ASSERT_FALSE(segments.empty());
    VirtualSegmentId victim =
        segments[rng.NextBounded(segments.size())]->id();
    vlog.EvacuateSegment(victim);

    // Finish replication; everything must become durable, in order.
    while (auto batch = vlog.Poll()) vlog.Complete(*batch);
    EXPECT_EQ(group.durable_chunk_count(), uint64_t(kChunks)) << seed;

    // The union of refs across segments covers each chunk exactly once,
    // and within each segment per-group indices are increasing.
    std::map<uint64_t, int> seen;
    for (const VirtualSegment* seg : vlog.Segments()) {
      uint64_t last = 0;
      bool first = true;
      for (size_t i = 0; i < seg->ref_count(); ++i) {
        uint64_t idx = seg->ref(i).loc.group_chunk_index;
        ++seen[idx];
        if (!first) {
          EXPECT_GT(idx, last);
        }
        last = idx;
        first = false;
      }
    }
    EXPECT_EQ(seen.size(), size_t(kChunks)) << seed;
    for (const auto& [idx, count] : seen) {
      EXPECT_EQ(count, 1) << "chunk " << idx << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace kera
