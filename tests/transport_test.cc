// Transport fault-semantics suite, run against every Network
// implementation (Direct, Threaded, Socket) through a typed harness, plus
// socket-specific tests: zero-copy accounting on the parts path, request
// multiplexing over one connection, cross-instance routing via SetPeer,
// and a full produce/consume round trip over real TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "rpc/messages.h"
#include "rpc/socket_transport.h"
#include "rpc/transport.h"

namespace kera::rpc {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string AsString(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Echoes the request back; optionally sleeps first (to keep requests
/// in flight while the test crashes the node).
class EchoHandler : public RpcHandler {
 public:
  std::vector<std::byte> HandleRpc(
      std::span<const std::byte> request) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    return {request.begin(), request.end()};
  }
  std::atomic<int> calls{0};
  int delay_ms = 0;
};

// ----- typed harnesses: a uniform facade over the three transports -----

class DirectHarness {
 public:
  void Register(NodeId node, RpcHandler* h) { net_.Register(node, h); }
  void Crash(NodeId node) { net_.Crash(node); }
  void Restore(NodeId node, RpcHandler* h) { net_.Restore(node, h); }
  Network& network() { return net_; }

 private:
  DirectNetwork net_;
};

class ThreadedHarness {
 public:
  void Register(NodeId node, RpcHandler* h) { net_.Register(node, h); }
  void Crash(NodeId node) { net_.Crash(node); }
  void Restore(NodeId node, RpcHandler* h) { net_.Restore(node, h); }
  Network& network() { return net_; }

 private:
  ThreadedNetwork net_{2};
};

class SocketHarness {
 public:
  void Register(NodeId node, RpcHandler* h) {
    auto port = net_.Register(node, h);
    EXPECT_TRUE(port.ok()) << port.status().ToString();
  }
  void Crash(NodeId node) { net_.Crash(node); }
  void Restore(NodeId node, RpcHandler* h) {
    auto port = net_.Restore(node, h);
    EXPECT_TRUE(port.ok()) << port.status().ToString();
  }
  Network& network() { return net_; }

 private:
  SocketNetwork net_;
};

template <typename Harness>
class TransportTest : public ::testing::Test {
 protected:
  Harness harness_;
};

using Transports =
    ::testing::Types<DirectHarness, ThreadedHarness, SocketHarness>;

class TransportNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, DirectHarness>) return "Direct";
    if (std::is_same_v<T, ThreadedHarness>) return "Threaded";
    return "Socket";
  }
};

TYPED_TEST_SUITE(TransportTest, Transports, TransportNames);

TYPED_TEST(TransportTest, EchoRoundTrip) {
  EchoHandler echo;
  this->harness_.Register(1, &echo);
  auto r = this->harness_.network().Call(1, AsBytes("ping"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AsString(*r), "ping");
  EXPECT_EQ(echo.calls.load(), 1);
}

TYPED_TEST(TransportTest, UnknownNodeUnavailable) {
  auto r = this->harness_.network().Call(42, AsBytes("ping"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TYPED_TEST(TransportTest, ManyInFlightAsync) {
  EchoHandler echo;
  this->harness_.Register(1, &echo);
  constexpr int kInFlight = 32;
  std::vector<std::future<Result<std::vector<std::byte>>>> futures;
  futures.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    std::string payload = "req-" + std::to_string(i);
    futures.push_back(
        this->harness_.network().CallAsync(1, AsBytes(payload)));
  }
  for (int i = 0; i < kInFlight; ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(AsString(*r), "req-" + std::to_string(i));
  }
  EXPECT_EQ(echo.calls.load(), kInFlight);
}

TYPED_TEST(TransportTest, PartsCallMatchesSpan) {
  EchoHandler echo;
  this->harness_.Register(1, &echo);
  // Scatter-gather request: three pieces with independent storage.
  const std::string a = "scatter-";
  const std::string b = "gather-";
  const std::string c = "pieces";
  BytesRefParts parts;
  parts.pieces = {AsBytes(a), AsBytes(b), AsBytes(c)};
  auto f = this->harness_.network().CallAsyncParts(1, parts);
  auto r = f.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AsString(*r), a + b + c);
}

TYPED_TEST(TransportTest, CrashFailsNewCalls) {
  EchoHandler echo;
  this->harness_.Register(1, &echo);
  ASSERT_TRUE(this->harness_.network().Call(1, AsBytes("up")).ok());
  this->harness_.Crash(1);
  // The socket transport tears the connection down asynchronously; a call
  // issued before the client notices may still fail only on response. All
  // transports must converge to kUnavailable within the deadline.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Result<std::vector<std::byte>> r = this->harness_.network().Call(
      1, AsBytes("down"));
  while (r.ok() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    r = this->harness_.network().Call(1, AsBytes("down"));
  }
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TYPED_TEST(TransportTest, CrashMidFlightCompletesEveryFuture) {
  EchoHandler slow;
  slow.delay_ms = 20;
  this->harness_.Register(1, &slow);
  std::vector<std::future<Result<std::vector<std::byte>>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(this->harness_.network().CallAsync(1, AsBytes("x")));
  }
  this->harness_.Crash(1);
  // Every future must become ready: either it completed before the crash
  // or it fails with kUnavailable — none may hang or be abandoned.
  int failed = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    auto r = f.get();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      ++failed;
    } else {
      EXPECT_EQ(AsString(*r), "x");
    }
  }
  // The stale futures stayed valid; at least the calls issued after the
  // handler pool saturated cannot all have completed... but timing makes
  // that non-deterministic, so only the completeness above is asserted.
  (void)failed;
}

TYPED_TEST(TransportTest, RestoreAfterCrashServesAgain) {
  EchoHandler first;
  this->harness_.Register(1, &first);
  ASSERT_TRUE(this->harness_.network().Call(1, AsBytes("one")).ok());
  this->harness_.Crash(1);

  EchoHandler second;
  this->harness_.Restore(1, &second);
  // The socket client may need a moment to drop the dead connection and
  // reconnect to the rebound listener; retry until the deadline.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  Result<std::vector<std::byte>> r =
      this->harness_.network().Call(1, AsBytes("two"));
  while (!r.ok() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r = this->harness_.network().Call(1, AsBytes("two"));
  }
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AsString(*r), "two");
  EXPECT_GE(second.calls.load(), 1);
}

// ----- zero-copy accounting -----

TEST(TransportCopyTest, SocketPartsPathCopiesNothing) {
  SocketNetwork net;
  EchoHandler echo;
  ASSERT_TRUE(net.Register(1, &echo).ok());

  // Span path: one copy into the transport-owned frame (same contract as
  // the other transports).
  ASSERT_TRUE(net.Call(1, AsBytes("copied")).ok());
  auto s1 = net.GetStats();
  EXPECT_EQ(s1.calls, 1u);
  EXPECT_EQ(s1.tx_copied_bytes, 6u);
  EXPECT_EQ(s1.parts_copied_bytes, 0u);

  // Parts path: pieces go from caller memory straight to the vectored
  // send — zero payload bytes copied into transport buffers, and the
  // base-class materializing fallback is never taken.
  const std::string big(4096, 'z');
  BytesRefParts parts;
  parts.pieces = {AsBytes("hdr|"), AsBytes(big)};
  auto r = net.CallAsyncParts(1, parts).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 4u + big.size());
  auto s2 = net.GetStats();
  EXPECT_EQ(s2.parts_calls, 1u);
  EXPECT_EQ(s2.tx_copied_bytes, s1.tx_copied_bytes);  // unchanged
  EXPECT_EQ(s2.parts_copied_bytes, 0u);
  EXPECT_EQ(net.materialized_parts_bytes(), 0u);
}

TEST(TransportCopyTest, BaseFallbackMaterializesOnce) {
  // Transports without a native parts path (Threaded here) materialize
  // the frame exactly once and account for it.
  ThreadedNetwork net(1);
  EchoHandler echo;
  net.Register(1, &echo);
  BytesRefParts parts;
  parts.pieces = {AsBytes("abc"), AsBytes("defg")};
  auto r = net.CallAsyncParts(1, parts).get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(AsString(*r), "abcdefg");
  EXPECT_EQ(net.materialized_parts_bytes(), 7u);
  net.Shutdown();
}

// ----- multiplexing -----

TEST(TransportMuxTest, ManyCallsShareOneConnection) {
  SocketNetwork net;
  EchoHandler echo;
  ASSERT_TRUE(net.Register(1, &echo).ok());
  constexpr int kRounds = 8;
  constexpr int kWindow = 16;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<Result<std::vector<std::byte>>>> futures;
    for (int i = 0; i < kWindow; ++i) {
      std::string payload =
          "r" + std::to_string(round) + "-" + std::to_string(i);
      futures.push_back(net.CallAsync(1, AsBytes(payload)));
    }
    for (int i = 0; i < kWindow; ++i) {
      auto r = futures[i].get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(AsString(*r),
                "r" + std::to_string(round) + "-" + std::to_string(i));
    }
  }
  // A resolved future proves the response bytes arrived, but the server
  // IO thread bumps frames_sent after the sendmsg that carried them — so
  // the counter can trail the futures briefly. It is monotonic; poll.
  const uint64_t want_frames = 2u * kRounds * kWindow;
  auto stats = net.GetStats();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (stats.frames_sent < want_frames &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = net.GetStats();
  }
  EXPECT_EQ(stats.connections_opened, 1u);  // no connection-per-call
  // Requests plus their responses (client and server share the instance).
  EXPECT_EQ(stats.frames_sent, want_frames);
  // Queued frames coalesce into vectored sends: strictly fewer syscalls
  // than frames on at least some flushes is not guaranteed by timing, but
  // the flush count can never exceed one per frame.
  EXPECT_LE(stats.sendmsg_calls, stats.frames_sent);
  EXPECT_EQ(echo.calls.load(), kRounds * kWindow);
}

// ----- cross-instance routing (two "processes" in one test) -----

TEST(TransportPeerTest, SetPeerRoutesAcrossInstances) {
  SocketNetwork server_net;
  EchoHandler echo;
  auto port = server_net.Register(7, &echo);
  ASSERT_TRUE(port.ok());

  SocketNetwork client_net;
  client_net.SetPeer(7, "127.0.0.1", *port);
  auto r = client_net.Call(7, AsBytes("hello across"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AsString(*r), "hello across");
  EXPECT_EQ(echo.calls.load(), 1);
}

// ----- client wake machinery: deterministic eventfd race regressions -----
//
// The client IO loop coalesces wakeups through one eventfd guarded by a
// wake-pending flag. Two orderings inside the kWakeTag pass are
// load-bearing, and both once raced under stress: the eventfd must be
// drained BEFORE the pending flag is cleared, and the stop flag must be
// re-checked AFTER the drain (a stop token can be consumed by a drain it
// raced into). These tests drive the exact interleavings through the
// injected wake hooks instead of hammering threads and hoping.

TEST(SocketWakeRaceTest, WakeInDrainWindowDoesNotStrandPendingFlag) {
  SocketNetwork net;
  EchoHandler echo;
  auto port = net.Register(1, &echo);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  // Warm the connection so later calls exercise only the wake machinery.
  auto warm = net.Call(1, AsBytes("warm"));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Inject a concurrent WakeClient at the exact point between the eventfd
  // drain and the pending-flag clear — the critical window. With the
  // correct order the flag is still set there, so the injected wake
  // elides its signal and the clear below leaves a clean slate. With the
  // broken order (clear first) the injected token is eaten by the drain
  // while the flag sticks at true: every later WakeClient elides its
  // signal, no pass ever flushes the queue again, and the call below
  // hangs.
  std::atomic<bool> injected{false};
  net.SetClientWakeHooksForTest({}, [&net, &injected] {
    if (!injected.exchange(true)) net.InjectClientWakeForTest();
  });

  auto f2 = net.CallAsync(1, AsBytes("two"));
  ASSERT_EQ(std::future_status::ready, f2.wait_for(std::chrono::seconds(10)));
  for (int i = 0; i < 5000 && !injected.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(injected.load()) << "wake pass never ran the injected hook";
  net.SetClientWakeHooksForTest({}, {});

  auto f3 = net.CallAsync(1, AsBytes("three"));
  ASSERT_EQ(std::future_status::ready, f3.wait_for(std::chrono::seconds(10)))
      << "wake-pending flag stranded: a wake injected inside the "
         "drain-to-clear window was lost and later signals were elided";
  auto r3 = f3.get();
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(AsString(*r3), "three");
}

TEST(SocketWakeRaceTest, StopTokenAbsorbedByDrainStillStopsLoop) {
  auto net = std::make_unique<SocketNetwork>();

  // Fire the client-side stop (exactly what Shutdown does: store the flag,
  // signal the eventfd) from just before a drain, so the drain consumes
  // the stop token along with the wake token that triggered the pass. The
  // post-clear stop re-check must still notice the flag and exit the
  // loop; without it the thread re-parks in epoll_wait with the stop
  // token already eaten.
  std::atomic<int> fires{0};
  SocketNetwork* raw = net.get();
  net->SetClientWakeHooksForTest(
      [raw, &fires] {
        if (fires.fetch_add(1) == 0) raw->SignalClientStopForTest();
      },
      {});
  net->InjectClientWakeForTest();
  for (int i = 0; i < 5000 && fires.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fires.load(), 1) << "wake pass never ran the injected hook";

  // The stop is sticky once absorbed: a fresh wake token must not get the
  // loop to process events again (the exited thread never drains it).
  net->InjectClientWakeForTest();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fires.load(), 1)
      << "client IO loop kept processing wake passes after an absorbed "
         "stop token";

  // And teardown must complete promptly — the join inside Shutdown hangs
  // forever if the loop is still parked waiting for a token that was
  // already consumed.
  auto gone = std::async(std::launch::async, [&net] { net.reset(); });
  ASSERT_EQ(std::future_status::ready, gone.wait_for(std::chrono::seconds(10)))
      << "Shutdown did not complete after an absorbed stop token";
}

// ----- server shard wake machinery: the same races, per-shard -----
//
// Every server shard runs the identical eventfd coalescing protocol as
// the client loop (drain before clearing wake_pending, re-check stop
// after the drain), so the PR-3 client races exist per shard too. These
// drive them through the server-side hooks on a 2-shard node, with a
// router that sends every request to shard 1 while the connection lives
// on shard 0 — so each call also crosses the response-staging wake path
// between shards.

TEST(SocketWakeRaceTest, ServerShardWakeInDrainWindowDoesNotStrandFlag) {
  SocketNetwork net;
  EchoHandler echo;
  SocketNetwork::NodeOptions opts;
  opts.shards = 2;
  // All requests to shard 1; the (single, shared) client connection is
  // accepted by shard 0, so every response is staged cross-shard and
  // delivered through shard 0's wake path.
  opts.router = [](std::span<const std::byte>, int) { return 1; };
  auto port = net.Register(1, &echo, std::move(opts));
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  auto warm = net.Call(1, AsBytes("warm"));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Inject concurrent wakes into BOTH shards at the point between a
  // shard's eventfd drain and its pending-flag clear. For the shard
  // mid-pass this lands in the critical window: with the correct order
  // the flag is still set, the injected wake elides its signal, and the
  // clear leaves a clean slate. With the broken order (clear first) the
  // token is eaten while the flag sticks at true, every later response
  // wake on that shard is elided, and the call below never completes.
  std::atomic<bool> injected{false};
  net.SetServerWakeHooksForTest({}, [&net, &injected] {
    if (!injected.exchange(true)) {
      net.InjectServerWakeForTest(1, 0);
      net.InjectServerWakeForTest(1, 1);
    }
  });

  auto f2 = net.CallAsync(1, AsBytes("two"));
  ASSERT_EQ(std::future_status::ready, f2.wait_for(std::chrono::seconds(10)));
  for (int i = 0; i < 5000 && !injected.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(injected.load()) << "server wake pass never ran the hook";
  net.SetServerWakeHooksForTest({}, {});

  auto f3 = net.CallAsync(1, AsBytes("three"));
  ASSERT_EQ(std::future_status::ready, f3.wait_for(std::chrono::seconds(10)))
      << "server shard wake-pending flag stranded: a wake injected inside "
         "the drain-to-clear window was lost and later response wakes "
         "were elided";
  auto r3 = f3.get();
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(AsString(*r3), "three");
}

TEST(SocketWakeRaceTest, ServerShardStopAbsorbedByDrainStillStopsLoops) {
  auto net = std::make_unique<SocketNetwork>();
  EchoHandler echo;
  SocketNetwork::NodeOptions opts;
  opts.shards = 2;
  auto port = net->Register(1, &echo, std::move(opts));
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  // Fire the node's stop (what Crash/Shutdown do: store the flag, signal
  // EVERY shard's eventfd) from just before a shard-0 drain, so shard 0
  // absorbs its stop token together with the wake token that triggered
  // the pass. The post-drain stop re-check must still notice the flag on
  // that shard; without it the loop re-parks in epoll_wait with its token
  // already eaten, and the node can never be torn down.
  std::atomic<int> fires{0};
  SocketNetwork* raw = net.get();
  net->SetServerWakeHooksForTest(
      [raw, &fires] {
        if (fires.fetch_add(1) == 0) raw->SignalServerStopForTest(1);
      },
      {});
  net->InjectServerWakeForTest(1, 0);
  for (int i = 0; i < 5000 && fires.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fires.load(), 1) << "server wake pass never ran the hook";

  // Teardown joins every shard IO loop; it hangs forever if any shard is
  // still parked waiting for a token that was already consumed.
  auto gone = std::async(std::launch::async, [&net] { net.reset(); });
  ASSERT_EQ(std::future_status::ready, gone.wait_for(std::chrono::seconds(10)))
      << "Shutdown did not join all shard IO loops after an absorbed "
         "stop token";
}

// Crash on a multi-shard node: all shard loops (including ones with no
// traffic, parked deep in epoll_wait, and workers blocked mid-handler)
// must be signalled and joined promptly, in-flight calls must complete,
// and Restore must bring the node back with the SAME shard topology.
TEST(SocketShardTest, CrashJoinsAllShardLoopsAndRestoreKeepsTopology) {
  SocketNetwork net;
  EchoHandler echo;
  echo.delay_ms = 30;  // keep handlers in flight across the crash
  SocketNetwork::NodeOptions opts;
  opts.shards = 3;
  opts.router = [](std::span<const std::byte> frame, int shards) {
    return frame.empty() ? 0 : int(frame[0]) % shards;
  };
  auto port = net.Register(1, &echo, std::move(opts));
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  std::vector<std::future<Result<std::vector<std::byte>>>> inflight;
  for (int i = 0; i < 9; ++i) {
    std::string payload(1, char('a' + i));
    inflight.push_back(net.CallAsync(1, AsBytes(payload)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  net.Crash(1);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5))
      << "Crash blocked on a stranded shard IO loop";
  for (auto& f : inflight) {
    ASSERT_EQ(std::future_status::ready, f.wait_for(std::chrono::seconds(10)))
        << "in-flight call leaked across a multi-shard Crash";
    (void)f.get();  // completed response or error; both are fine
  }

  echo.delay_ms = 0;
  auto rport = net.Restore(1, &echo);
  ASSERT_TRUE(rport.ok()) << rport.status().ToString();
  auto r = net.Call(1, AsBytes("back"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AsString(*r), "back");
}

// ----- end-to-end over TCP -----

TEST(SocketClusterTest, ProduceConsumeRoundTrip) {
  MiniClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  cfg.transport = MiniClusterTransport::kSocket;
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  cfg.broker_memory_bytes = 64 << 20;
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("s", opts);
  ASSERT_TRUE(info.ok());

  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "s";
  pc.chunk_size = 1024;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 1000;
  for (int i = 0; i < kRecords; ++i) {
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  ConsumerConfig cc;
  cc.stream = "s";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(256)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(received.count("v" + std::to_string(i)), 1u) << i;
  }
}

}  // namespace
}  // namespace kera::rpc
