// End-to-end integration tests over the threaded MiniCluster: multiple
// producers and consumers in parallel, exactly-once under retransmission,
// the durability gate across the full RPC stack, crash recovery under the
// threaded network, and memory bounding via trimming.
#include <gtest/gtest.h>

#include <filesystem>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

MiniClusterConfig FourNodeConfig() {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 2;
  cfg.segment_size = 64 << 10;
  cfg.segments_per_group = 2;
  cfg.virtual_segment_capacity = 64 << 10;
  cfg.broker_memory_bytes = 128 << 20;
  return cfg;
}

TEST(IntegrationTest, MultiProducerMultiConsumerNoLossNoDuplication) {
  MiniCluster cluster(FourNodeConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 8;
  opts.replication_factor = 3;
  ASSERT_TRUE(cluster.coordinator().CreateStream("events", opts).ok());

  constexpr int kProducers = 3;
  constexpr int kRecordsEach = 1500;

  std::vector<std::thread> producer_threads;
  for (int p = 0; p < kProducers; ++p) {
    producer_threads.emplace_back([&, p] {
      ProducerConfig pc;
      pc.producer_id = ProducerId(p + 1);
      pc.stream = "events";
      pc.chunk_size = 1024;
      Producer producer(pc, cluster.network());
      ASSERT_TRUE(producer.Connect().ok());
      for (int i = 0; i < kRecordsEach; ++i) {
        std::string v = "p" + std::to_string(p) + "-" + std::to_string(i);
        ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
      }
      ASSERT_TRUE(producer.Close().ok());
    });
  }
  for (auto& t : producer_threads) t.join();

  // Two consumers split the streamlets.
  std::multiset<std::string> received;
  std::mutex received_mu;
  std::vector<std::thread> consumer_threads;
  std::atomic<int> total{0};
  for (int c = 0; c < 2; ++c) {
    consumer_threads.emplace_back([&, c] {
      ConsumerConfig cc;
      cc.stream = "events";
      for (StreamletId sl = 0; sl < 8; ++sl) {
        if (int(sl % 2) == c) cc.streamlets.push_back(sl);
      }
      Consumer consumer(cc, cluster.network());
      ASSERT_TRUE(consumer.Connect().ok());
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (total.load() < kProducers * kRecordsEach &&
             std::chrono::steady_clock::now() < deadline) {
        auto records = consumer.Poll(256);
        if (records.empty()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        std::lock_guard<std::mutex> lock(received_mu);
        for (auto& rec : records) {
          received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                           rec.value.size());
          total.fetch_add(1);
        }
      }
      consumer.Close();
    });
  }
  for (auto& t : consumer_threads) t.join();

  ASSERT_EQ(received.size(), size_t(kProducers * kRecordsEach));
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kRecordsEach; ++i) {
      std::string v = "p" + std::to_string(p) + "-" + std::to_string(i);
      ASSERT_EQ(received.count(v), 1u) << v;
    }
  }
  // Every node replicated data (R3 scatters backups over the cluster).
  uint64_t backup_chunks = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    backup_chunks += cluster.backup(n).GetStats().chunks_received;
  }
  auto totals = cluster.TotalBrokerStats();
  EXPECT_EQ(backup_chunks, 2 * totals.chunks_appended);  // two copies each
}

TEST(IntegrationTest, RetransmittedRequestsAreDeduplicated) {
  MiniCluster cluster(FourNodeConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("dedup", opts);
  ASSERT_TRUE(info.ok());
  NodeId leader = info->streamlet_brokers[0];

  // Build one chunk and send the same produce request three times, as a
  // producer would after ack timeouts.
  ChunkBuilder builder(1024);
  builder.Start(info->stream, 0, /*producer=*/7);
  ASSERT_TRUE(builder.AppendValue(AsBytes(std::string("exactly-once"))));
  auto chunk = builder.Seal(/*seq=*/1);

  for (int attempt = 0; attempt < 3; ++attempt) {
    rpc::ProduceRequest req;
    req.producer = 7;
    req.stream = info->stream;
    req.chunks = {chunk};
    rpc::Writer body;
    req.Encode(body);
    auto raw = cluster.network().Call(
        leader, rpc::Frame(rpc::Opcode::kProduce, body));
    ASSERT_TRUE(raw.ok());
    rpc::Reader r(*raw);
    auto resp = rpc::ProduceResponse::Decode(r);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, StatusCode::kOk);
    if (attempt == 0) {
      EXPECT_EQ(resp->appended, 1u);
    } else {
      EXPECT_EQ(resp->appended, 0u);
      EXPECT_EQ(resp->duplicates, 1u);
    }
  }
  EXPECT_EQ(cluster.broker(leader).GetStats().chunks_appended, 1u);
}

TEST(IntegrationTest, ThreadedCrashRecoveryPreservesData) {
  MiniCluster cluster(FourNodeConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 4;
  opts.replication_factor = 3;
  ASSERT_TRUE(cluster.coordinator().CreateStream("durable", opts).ok());

  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "durable";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  constexpr int kRecords = 2000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("r" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());

  // Kill a broker and recover.
  auto info = cluster.coordinator().GetStreamInfo("durable");
  ASSERT_TRUE(info.ok());
  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  auto replayed = cluster.coordinator().RecoverNode(victim);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();

  // Every acknowledged record is still consumable.
  ConsumerConfig cc;
  cc.stream = "durable";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(256)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  consumer.Close();
  ASSERT_EQ(received.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(received.count("r" + std::to_string(i)), 1u) << i;
  }
}

TEST(IntegrationTest, TrimmingBoundsMemoryUnderSustainedLoad) {
  MiniClusterConfig cfg = FourNodeConfig();
  cfg.nodes = 2;
  cfg.segment_size = 16 << 10;
  cfg.segments_per_group = 2;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("firehose", opts).ok());

  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "firehose";
  pc.chunk_size = 2048;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  std::string value(256, 'x');
  size_t trimmed_total = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(producer.Send(AsBytes(value)).ok());
    }
    ASSERT_TRUE(producer.Flush().ok());
    for (NodeId n = 1; n <= cfg.nodes; ++n) {
      trimmed_total += cluster.broker(n).TrimDurable();
    }
  }
  ASSERT_TRUE(producer.Close().ok());
  EXPECT_GT(trimmed_total, 0u);
  // Memory in use stays well below what was written: data was recycled.
  size_t in_use = 0;
  for (NodeId n = 1; n <= cfg.nodes; ++n) {
    in_use += cluster.broker(n).memory().in_use() * cfg.segment_size;
  }
  size_t written = 20u * 500u * (256 + kRecordFixedHeader);
  EXPECT_LT(in_use, written);
}

TEST(IntegrationTest, DiskBackedBackupsServeRecovery) {
  // Backups flush sealed virtual segments to disk and can evict the
  // in-memory copies; recovery then reloads from the files. This drives
  // the full disk path end-to-end through a broker crash.
  std::string dir = ::testing::TempDir() + "/kera_disk_recovery_n%u";
  // Fresh directories: a backup cold-starts by scanning its segment log,
  // so copies left by a previous run would otherwise be resurrected and
  // collide with this run's virtual segment ids.
  for (int n = 1; n <= 4; ++n) {
    std::filesystem::remove_all(::testing::TempDir() +
                                "/kera_disk_recovery_n" + std::to_string(n));
  }
  MiniClusterConfig cfg = FourNodeConfig();
  cfg.workers_per_node = 0;
  cfg.backup_dir = dir;
  cfg.segment_size = 8 << 10;            // small segments: many seals
  cfg.virtual_segment_capacity = 8 << 10;
  MiniCluster cluster(cfg);

  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("disk", opts);
  ASSERT_TRUE(info.ok());

  constexpr int kChunks = 60;
  std::string value(3000, 'd');  // ~2 chunks per virtual segment
  for (int i = 1; i <= kChunks; ++i) {
    StreamletId sl = StreamletId(i % 2);
    ChunkBuilder b(4096);
    b.Start(info->stream, sl, 1);
    ASSERT_TRUE(b.AppendValue(AsBytes(value)));
    auto chunk = b.Seal(ChunkSeq(i));
    rpc::ProduceRequest req;
    req.producer = 1;
    req.stream = info->stream;
    req.chunks = {chunk};
    ASSERT_EQ(cluster.broker(info->streamlet_brokers[sl])
                  .HandleProduce(req)
                  .status,
              StatusCode::kOk);
  }

  // Flush everything sealed so far and evict it from backup memory.
  size_t evicted = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    cluster.backup(n).WaitForFlushes();
    evicted += cluster.backup(n).EvictFlushed();
  }
  ASSERT_GT(evicted, 0u);

  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  auto replayed = cluster.coordinator().RecoverNode(victim);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_GT(*replayed, 0u);

  // Every chunk of the streamlet led by the victim is intact.
  auto fresh = cluster.coordinator().GetStreamInfo("disk");
  ASSERT_TRUE(fresh.ok());
  for (StreamletId sl = 0; sl < 2; ++sl) {
    if (info->streamlet_brokers[sl] != victim) continue;
    Stream* stream =
        cluster.broker(fresh->streamlet_brokers[sl]).GetStream(info->stream);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->GetStreamlet(sl)->total_chunks(), uint64_t(kChunks / 2));
  }
}

TEST(IntegrationTest, ConsumersNeverReadUnreplicatedData) {
  // With all backups crashed, R3 appends cannot become durable; a consume
  // via the full RPC stack must return nothing, then everything after the
  // backups "recover".
  MiniClusterConfig cfg = FourNodeConfig();
  cfg.workers_per_node = 0;  // DirectNetwork for precise control
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("gated", opts);
  ASSERT_TRUE(info.ok());
  NodeId leader = info->streamlet_brokers[0];

  ChunkBuilder builder(512);
  builder.Start(info->stream, 0, 1);
  ASSERT_TRUE(builder.AppendValue(AsBytes(std::string("gated-record"))));
  auto chunk = builder.Seal(1);

  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info->stream;
  req.chunks = {chunk};
  std::vector<std::pair<VirtualLog*, ChunkRef>> appended;
  auto presp = cluster.broker(leader).HandleProduceNoSync(req, &appended);
  ASSERT_EQ(presp.status, StatusCode::kOk);

  rpc::ConsumeRequest creq;
  creq.stream = info->stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  rpc::Writer body;
  creq.Encode(body);
  auto raw = cluster.network().Call(leader,
                                    rpc::Frame(rpc::Opcode::kConsume, body));
  ASSERT_TRUE(raw.ok());
  rpc::Reader r(*raw);
  auto cresp = rpc::ConsumeResponse::Decode(r);
  ASSERT_TRUE(cresp.ok());
  EXPECT_TRUE(cresp->entries[0].chunks.empty());  // durability gate holds

  // Drive replication; data becomes visible.
  ASSERT_EQ(appended.size(), 1u);
  VirtualLog* vlog = appended[0].first;
  while (auto batch = vlog->Poll()) {
    ASSERT_TRUE(cluster.broker(leader).ShipBatch(*vlog, *batch).ok());
  }
  raw = cluster.network().Call(leader, rpc::Frame(rpc::Opcode::kConsume,
                                                  body));
  ASSERT_TRUE(raw.ok());
  rpc::Reader r2(*raw);
  auto cresp2 = rpc::ConsumeResponse::Decode(r2);
  ASSERT_TRUE(cresp2.ok());
  EXPECT_EQ(cresp2->entries[0].chunks.size(), 1u);
}

}  // namespace
}  // namespace kera
