// Unit tests for RPC serialization, framing and transports.
#include <gtest/gtest.h>

#include <atomic>
#include <string_view>
#include <thread>

#include "rpc/messages.h"
#include "rpc/serialize.h"
#include "rpc/transport.h"

namespace kera::rpc {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(SerializeTest, PrimitivesRoundTrip) {
  Writer w;
  w.U8(7);
  w.U16(65535);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.Bool(true);
  w.Str("hello");
  w.Bytes(AsBytes(std::string_view("\x00\x01\x02", 3)));

  Reader r(w.View());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  bool b;
  std::string s;
  std::span<const std::byte> bytes;
  ASSERT_TRUE(r.U8(u8).ok());
  ASSERT_TRUE(r.U16(u16).ok());
  ASSERT_TRUE(r.U32(u32).ok());
  ASSERT_TRUE(r.U64(u64).ok());
  ASSERT_TRUE(r.Bool(b).ok());
  ASSERT_TRUE(r.Str(s).ok());
  ASSERT_TRUE(r.Bytes(bytes).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65535);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedReadFails) {
  Writer w;
  w.U32(1);
  Reader r(w.View());
  uint64_t v;
  EXPECT_EQ(r.U64(v).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, TruncatedBytesLengthFails) {
  Writer w;
  w.U32(100);  // claims 100 bytes follow; none do
  Reader r(w.View());
  std::span<const std::byte> out;
  EXPECT_EQ(r.Bytes(out).code(), StatusCode::kCorruption);
}

TEST(FrameTest, RoundTrip) {
  Writer body;
  body.U32(42);
  auto frame = Frame(Opcode::kProduce, body);
  Opcode op;
  std::span<const std::byte> parsed_body;
  ASSERT_TRUE(ParseFrame(frame, op, parsed_body).ok());
  EXPECT_EQ(op, Opcode::kProduce);
  Reader r(parsed_body);
  uint32_t v;
  ASSERT_TRUE(r.U32(v).ok());
  EXPECT_EQ(v, 42u);
}

TEST(FrameTest, ShortFrameRejected) {
  std::vector<std::byte> tiny(1);
  Opcode op;
  std::span<const std::byte> body;
  EXPECT_FALSE(ParseFrame(tiny, op, body).ok());
}

TEST(MessagesTest, ProduceRoundTrip) {
  ProduceRequest req;
  req.producer = 9;
  req.stream = 1234;
  req.recovery = true;
  std::vector<std::byte> c1(100, std::byte{0xAA});
  std::vector<std::byte> c2(50, std::byte{0xBB});
  req.chunks = {c1, c2};

  Writer w;
  req.Encode(w);
  auto encoded = std::move(w).Take();  // materializes the referenced chunks
  Reader r(encoded);
  auto got = ProduceRequest::Decode(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->producer, 9u);
  EXPECT_EQ(got->stream, 1234u);
  EXPECT_TRUE(got->recovery);
  ASSERT_EQ(got->chunks.size(), 2u);
  EXPECT_EQ(got->chunks[0].size(), 100u);
  EXPECT_EQ(got->chunks[1][0], std::byte{0xBB});
}

TEST(MessagesTest, ConsumeRoundTrip) {
  ConsumeRequest req;
  req.stream = 5;
  req.max_bytes = 4096;
  req.entries = {{.streamlet = 1, .group = 2, .start_chunk = 3,
                  .max_chunks = 4}};
  Writer w;
  req.Encode(w);
  Reader r(w.View());
  auto got = ConsumeRequest::Decode(r);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->entries.size(), 1u);
  EXPECT_EQ(got->entries[0].start_chunk, 3u);

  ConsumeResponse resp;
  resp.status = StatusCode::kOk;
  ConsumeEntryResponse e;
  e.streamlet = 1;
  e.group = 2;
  e.next_chunk = 7;
  e.group_exists = true;
  e.group_closed = true;
  std::vector<std::byte> chunk(64, std::byte{0xCC});
  e.chunks = {chunk};
  resp.entries.push_back(std::move(e));
  Writer w2;
  resp.Encode(w2);
  auto encoded = std::move(w2).Take();
  Reader r2(encoded);
  auto got2 = ConsumeResponse::Decode(r2);
  ASSERT_TRUE(got2.ok());
  EXPECT_TRUE(got2->entries[0].group_closed);
  EXPECT_EQ(got2->entries[0].next_chunk, 7u);
  EXPECT_EQ(got2->entries[0].chunks[0].size(), 64u);
}

TEST(MessagesTest, StreamInfoRoundTrip) {
  CreateStreamResponse resp;
  resp.status = StatusCode::kOk;
  resp.info.stream = 17;
  resp.info.options.num_streamlets = 8;
  resp.info.options.active_groups_per_streamlet = 4;
  resp.info.options.replication_factor = 3;
  resp.info.options.vlog_policy = VlogPolicy::kPerSubPartition;
  resp.info.streamlet_brokers = {1, 2, 3, 4, 1, 2, 3, 4};
  Writer w;
  resp.Encode(w);
  Reader r(w.View());
  auto got = CreateStreamResponse::Decode(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->info.stream, 17u);
  EXPECT_EQ(got->info.options.vlog_policy, VlogPolicy::kPerSubPartition);
  EXPECT_EQ(got->info.streamlet_brokers.size(), 8u);
}

TEST(MessagesTest, ReplicateRoundTrip) {
  ReplicateRequest req;
  req.primary = 2;
  req.vlog = 3;
  req.vseg = 4;
  req.start_offset = 1000;
  req.chunk_count = 2;
  req.checksum_after = 0xFEEDFACE;
  req.seals = true;
  std::vector<std::byte> payload(128, std::byte{0x11});
  req.payload = payload;
  Writer w;
  req.Encode(w);
  auto encoded = std::move(w).Take();
  Reader r(encoded);
  auto got = ReplicateRequest::Decode(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->start_offset, 1000u);
  EXPECT_EQ(got->checksum_after, 0xFEEDFACEu);
  EXPECT_TRUE(got->seals);
  EXPECT_EQ(got->payload.size(), 128u);
}

// The scatter-gather encoder must emit frames byte-identical to a plain
// copy-everything encoder: referencing payloads is a transport-side
// optimization, not a wire format change.
TEST(MessagesTest, ScatterGatherProduceFrameIsByteIdentical) {
  // Mixed sizes straddle the inline-copy cutoff (small runs are copied,
  // large ones referenced) so both materialization paths are exercised.
  std::vector<std::byte> small(17, std::byte{0x01});
  std::vector<std::byte> large(900, std::byte{0x02});
  std::vector<std::byte> medium(64, std::byte{0x03});
  ProduceRequest req;
  req.producer = 3;
  req.stream = 77;
  req.recovery = false;
  req.chunks = {small, large, medium};

  Writer sg;
  req.Encode(sg);

  // Reference encoding: identical field order, everything copied inline.
  Writer ref;
  ref.U32(req.producer);
  ref.U64(req.stream);
  ref.Bool(req.recovery);
  ref.U32(uint32_t(req.chunks.size()));
  for (const auto& c : req.chunks) ref.Bytes(c);
  ASSERT_TRUE(ref.contiguous());

  EXPECT_EQ(sg.size(), ref.size());
  auto ref_frame = Frame(Opcode::kProduce, ref);
  auto sg_frame = Frame(Opcode::kProduce, sg);
  EXPECT_EQ(sg_frame, ref_frame);
  auto sg_bytes = std::move(sg).Take();
  auto ref_bytes = std::move(ref).Take();
  EXPECT_EQ(sg_bytes, ref_bytes);
}

TEST(MessagesTest, ScatterGatherConsumeFrameIsByteIdentical) {
  std::vector<std::byte> c1(128, std::byte{0xAB});
  std::vector<std::byte> c2(1000, std::byte{0xCD});
  ConsumeResponse resp;
  ConsumeEntryResponse e;
  e.streamlet = 4;
  e.group = 9;
  e.next_chunk = 2;
  e.group_exists = true;
  e.groups_created = 3;
  e.chunks = {c1, c2};
  resp.entries.push_back(std::move(e));

  Writer sg;
  resp.Encode(sg);

  Writer ref;
  ref.U8(uint8_t(resp.status));
  ref.U32(1);
  const auto& re = resp.entries[0];
  ref.U32(re.streamlet);
  ref.U32(re.group);
  ref.U64(re.next_chunk);
  ref.Bool(re.group_exists);
  ref.Bool(re.group_closed);
  ref.Bool(re.stream_sealed);
  ref.U32(re.groups_created);
  ref.U32(uint32_t(re.chunks.size()));
  for (const auto& c : re.chunks) ref.Bytes(c);
  ASSERT_TRUE(ref.contiguous());

  EXPECT_EQ(Frame(Opcode::kConsume, sg), Frame(Opcode::kConsume, ref));
  EXPECT_EQ(std::move(sg).Take(), std::move(ref).Take());
}

// payload_parts must encode exactly like one flat payload span covering
// the same bytes (backups decode a single payload either way).
TEST(MessagesTest, ReplicatePayloadPartsMatchFlatPayload) {
  std::vector<std::byte> a(300, std::byte{0x11});
  std::vector<std::byte> b(45, std::byte{0x22});
  std::vector<std::byte> c(512, std::byte{0x33});
  std::vector<std::byte> flat;
  flat.insert(flat.end(), a.begin(), a.end());
  flat.insert(flat.end(), b.begin(), b.end());
  flat.insert(flat.end(), c.begin(), c.end());

  ReplicateRequest parts_req;
  parts_req.primary = 1;
  parts_req.vlog = 2;
  parts_req.vseg = 3;
  parts_req.start_offset = 4;
  parts_req.chunk_count = 3;
  parts_req.checksum_after = 0xABCD;
  parts_req.payload_parts = {a, b, c};

  ReplicateRequest flat_req = parts_req;
  flat_req.payload_parts.clear();
  flat_req.payload = flat;

  Writer wp, wf;
  parts_req.Encode(wp);
  flat_req.Encode(wf);
  auto encoded_parts = std::move(wp).Take();
  auto encoded_flat = std::move(wf).Take();
  EXPECT_EQ(encoded_parts, encoded_flat);

  Reader r(encoded_parts);
  auto got = ReplicateRequest::Decode(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload.size(), flat.size());
  EXPECT_TRUE(std::equal(got->payload.begin(), got->payload.end(),
                         flat.begin()));
}

TEST(SerializeTest, WriterPiecesReassembleInOrder) {
  std::vector<std::byte> big(200, std::byte{0x7E});
  Writer w;
  w.U32(1);
  w.BytesRef(big);
  w.U32(2);
  std::vector<std::byte> gathered;
  w.ForEachPiece([&](std::span<const std::byte> piece) {
    gathered.insert(gathered.end(), piece.begin(), piece.end());
  });
  EXPECT_EQ(gathered.size(), w.size());
  EXPECT_EQ(gathered, std::move(w).Take());
}

TEST(MessagesTest, RecoveryMessagesRoundTrip) {
  ListRecoverySegmentsResponse resp;
  resp.segments = {{.primary = 1, .vlog = 2, .vseg = 3, .chunk_count = 4,
                    .sealed = true}};
  Writer w;
  resp.Encode(w);
  Reader r(w.View());
  auto got = ListRecoverySegmentsResponse::Decode(r);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->segments.size(), 1u);
  EXPECT_EQ(got->segments[0].vseg, 3u);
  EXPECT_TRUE(got->segments[0].sealed);
}

// ------------------------------------------------------------- transports

class EchoHandler final : public RpcHandler {
 public:
  std::vector<std::byte> HandleRpc(std::span<const std::byte> req) override {
    ++calls;
    return {req.begin(), req.end()};
  }
  std::atomic<int> calls{0};
};

TEST(DirectNetworkTest, CallDispatchesToHandler) {
  DirectNetwork net;
  EchoHandler echo;
  net.Register(5, &echo);
  auto resp = net.Call(5, AsBytes("ping"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->size(), 4u);
  EXPECT_EQ(echo.calls, 1);
  EXPECT_EQ(net.GetStats().calls, 1u);
}

TEST(DirectNetworkTest, UnknownNodeUnavailable) {
  DirectNetwork net;
  auto resp = net.Call(99, AsBytes("x"));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
}

TEST(DirectNetworkTest, CrashAndRestore) {
  DirectNetwork net;
  EchoHandler echo;
  net.Register(1, &echo);
  net.Crash(1);
  EXPECT_FALSE(net.Call(1, AsBytes("x")).ok());
  net.Restore(1, &echo);
  EXPECT_TRUE(net.Call(1, AsBytes("x")).ok());
}

TEST(ThreadedNetworkTest, ParallelCalls) {
  ThreadedNetwork net(2);
  EchoHandler echo;
  net.Register(1, &echo);
  constexpr int kCalls = 200;
  std::vector<std::future<Result<std::vector<std::byte>>>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(net.CallAsync(1, AsBytes("hello")));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 5u);
  }
  EXPECT_EQ(echo.calls, kCalls);
  net.Shutdown();
}

TEST(ThreadedNetworkTest, CrashedNodeFailsFast) {
  ThreadedNetwork net(1);
  EchoHandler echo;
  net.Register(1, &echo);
  net.Crash(1);
  auto r = net.Call(1, AsBytes("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  net.Shutdown();
}

TEST(ThreadedNetworkTest, MultiNodeIsolation) {
  ThreadedNetwork net(1);
  EchoHandler a, b;
  net.Register(1, &a);
  net.Register(2, &b);
  ASSERT_TRUE(net.Call(1, AsBytes("x")).ok());
  ASSERT_TRUE(net.Call(2, AsBytes("y")).ok());
  ASSERT_TRUE(net.Call(2, AsBytes("z")).ok());
  EXPECT_EQ(a.calls, 1);
  EXPECT_EQ(b.calls, 2);
  net.Shutdown();
}

}  // namespace
}  // namespace kera::rpc
