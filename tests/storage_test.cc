// Unit tests for the log-structured storage substrate: memory manager,
// segments, groups, streamlets, streams.
#include <gtest/gtest.h>

#include <string_view>
#include <thread>

#include "storage/memory_manager.h"
#include "storage/segment.h"
#include "storage/stream.h"
#include "storage/streamlet.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Builds a sealed chunk with `records` copies of `value`.
std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, ChunkSeq seq,
                                 int records = 1,
                                 std::string_view value = "payload",
                                 size_t chunk_size = 4096) {
  ChunkBuilder b(chunk_size);
  b.Start(stream, streamlet, producer);
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(b.AppendValue(AsBytes(value)));
  }
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

TEST(MemoryManagerTest, BudgetEnforced) {
  MemoryManager mm(4096, 1024);
  EXPECT_EQ(mm.max_segments(), 4u);
  std::vector<Buffer> held;
  for (int i = 0; i < 4; ++i) {
    auto buf = mm.Acquire();
    ASSERT_TRUE(buf.ok());
    held.push_back(std::move(buf).value());
  }
  auto fifth = mm.Acquire();
  EXPECT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.status().code(), StatusCode::kNoSpace);

  mm.Release(std::move(held.back()));
  held.pop_back();
  EXPECT_TRUE(mm.Acquire().ok());
}

TEST(MemoryManagerTest, ReleaseRecyclesBuffers) {
  MemoryManager mm(2048, 1024);
  auto a = mm.Acquire();
  ASSERT_TRUE(a.ok());
  mm.Release(std::move(a).value());
  EXPECT_EQ(mm.pooled(), 1u);
  auto b = mm.Acquire();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 0u);  // recycled buffers come back cleared
  EXPECT_EQ(mm.in_use(), 1u);
}

TEST(SegmentTest, HeaderAndAppend) {
  Segment seg(Buffer(4096), /*stream=*/5, /*streamlet=*/2, /*group=*/1,
              /*id=*/0);
  EXPECT_EQ(seg.head(), kSegmentHeaderSize);
  EXPECT_EQ(seg.durable_head(), kSegmentHeaderSize);

  auto chunk = MakeChunk(5, 2, 1, 1);
  auto off = seg.AppendChunk(chunk);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, kSegmentHeaderSize);
  EXPECT_EQ(seg.head(), kSegmentHeaderSize + chunk.size());

  auto view = seg.ChunkAt(*off);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->stream_id(), 5u);
  EXPECT_TRUE(view->VerifyChecksum());
}

TEST(SegmentTest, NoSpaceWhenFull) {
  auto chunk = MakeChunk(1, 0, 1, 1);
  Segment seg(Buffer(kSegmentHeaderSize + chunk.size() + 10), 1, 0, 0, 0);
  ASSERT_TRUE(seg.AppendChunk(chunk).ok());
  auto r = seg.AppendChunk(chunk);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNoSpace);
}

TEST(SegmentTest, ClosedRejectsAppend) {
  Segment seg(Buffer(4096), 1, 0, 0, 0);
  seg.Close();
  auto r = seg.AppendChunk(MakeChunk(1, 0, 1, 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSegmentClosed);
}

TEST(SegmentTest, DurableHeadMonotonic) {
  Segment seg(Buffer(4096), 1, 0, 0, 0);
  seg.AdvanceDurableHead(100);
  EXPECT_EQ(seg.durable_head(), 100u);
  seg.AdvanceDurableHead(50);  // stale update ignored
  EXPECT_EQ(seg.durable_head(), 100u);
  seg.AdvanceDurableHead(200);
  EXPECT_EQ(seg.durable_head(), 200u);
}

TEST(SegmentTest, ChunkAtRejectsBadOffsets) {
  Segment seg(Buffer(4096), 1, 0, 0, 0);
  ASSERT_TRUE(seg.AppendChunk(MakeChunk(1, 0, 1, 1)).ok());
  EXPECT_FALSE(seg.ChunkAt(0).ok());                   // inside header
  EXPECT_FALSE(seg.ChunkAt(seg.head()).ok());          // at head
  EXPECT_FALSE(seg.ChunkAt(seg.head() + 100).ok());    // beyond
}

class GroupTest : public ::testing::Test {
 protected:
  MemoryManager mm_{1 << 20, 4096};
};

TEST_F(GroupTest, AppendRollsSegments) {
  Group group(mm_, 1, 0, /*id=*/0, /*max_segments=*/3);
  auto chunk = MakeChunk(1, 0, 1, 1, /*records=*/10);
  size_t per_segment = (4096 - kSegmentHeaderSize) / chunk.size();
  size_t total = per_segment * 3;
  for (size_t i = 0; i < total; ++i) {
    auto r = group.AppendChunk(chunk);
    ASSERT_TRUE(r.ok()) << "chunk " << i << ": " << r.status().ToString();
    EXPECT_EQ(r->group_chunk_index, i);
  }
  EXPECT_EQ(group.segment_count(), 3u);
  // Quota exhausted.
  auto r = group.AppendChunk(chunk);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNoSpace);
}

TEST_F(GroupTest, LocatorAttrsStamped) {
  Group group(mm_, 7, 3, /*id=*/11, 2);
  auto chunk = MakeChunk(7, 3, 9, 1);
  auto r = group.AppendChunk(chunk);
  ASSERT_TRUE(r.ok());
  auto view = r->segment->ChunkAt(r->offset);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->group_id(), 11u);
  EXPECT_EQ(view->segment_id(), 0u);
  EXPECT_EQ(view->group_chunk_index(), 0u);
  EXPECT_TRUE(view->flags() & kChunkFlagAttrsAssigned);
}

TEST_F(GroupTest, DurabilityGateHidesChunks) {
  Group group(mm_, 1, 0, 0, 2);
  auto chunk = MakeChunk(1, 0, 1, 1);
  ASSERT_TRUE(group.AppendChunk(chunk).ok());
  ASSERT_TRUE(group.AppendChunk(chunk).ok());

  // Nothing durable yet: consumers see nothing.
  EXPECT_TRUE(group.GetDurableChunks(0, 10, 1 << 20).empty());

  group.MarkChunkDurable(0);
  EXPECT_EQ(group.GetDurableChunks(0, 10, 1 << 20).size(), 1u);
  group.MarkChunkDurable(1);
  EXPECT_EQ(group.GetDurableChunks(0, 10, 1 << 20).size(), 2u);
  EXPECT_EQ(group.durable_chunk_count(), 2u);
}

TEST_F(GroupTest, OutOfOrderDurabilityAdvancesPrefixOnly) {
  Group group(mm_, 1, 0, 0, 2);
  auto chunk = MakeChunk(1, 0, 1, 1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(group.AppendChunk(chunk).ok());
  group.MarkChunkDurable(2);  // out of order
  EXPECT_EQ(group.durable_chunk_count(), 0u);
  group.MarkChunkDurable(0);
  EXPECT_EQ(group.durable_chunk_count(), 1u);
  group.MarkChunkDurable(1);  // fills the gap; prefix jumps to 3
  EXPECT_EQ(group.durable_chunk_count(), 3u);
}

TEST_F(GroupTest, GetDurableChunksRespectsByteBudget) {
  Group group(mm_, 1, 0, 0, 2);
  auto chunk = MakeChunk(1, 0, 1, 1);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(group.AppendChunk(chunk).ok());
    group.MarkChunkDurable(i);
  }
  // Budget for two chunks only.
  auto got = group.GetDurableChunks(0, 10, chunk.size() * 2);
  EXPECT_EQ(got.size(), 2u);
  // At least one chunk is always returned even under a tiny budget.
  got = group.GetDurableChunks(0, 10, 1);
  EXPECT_EQ(got.size(), 1u);
}

TEST_F(GroupTest, RecordOffsetIndexLocatesEveryRecord) {
  Group group(mm_, 1, 0, 0, 8);
  // Chunks with varying record counts: 1, 2, 3, 4, 5 records.
  std::vector<uint32_t> counts = {1, 2, 3, 4, 5};
  for (uint64_t i = 0; i < counts.size(); ++i) {
    auto chunk = MakeChunk(1, 0, 1, ChunkSeq(i + 1), int(counts[i]));
    ASSERT_TRUE(group.AppendChunk(chunk).ok());
    group.MarkChunkDurable(i);
  }
  EXPECT_EQ(group.record_count(), 15u);
  EXPECT_EQ(group.durable_record_count(), 15u);

  // Every global record offset resolves to the right chunk and position.
  uint64_t offset = 0;
  for (uint64_t chunk_idx = 0; chunk_idx < counts.size(); ++chunk_idx) {
    for (uint32_t within = 0; within < counts[chunk_idx]; ++within) {
      auto loc = group.LocateRecord(offset);
      ASSERT_TRUE(loc.ok()) << offset;
      EXPECT_EQ(loc->chunk.group_chunk_index, chunk_idx) << offset;
      EXPECT_EQ(loc->record_within_chunk, within) << offset;
      ++offset;
    }
  }
  // Out of range beyond the durable records.
  EXPECT_FALSE(group.LocateRecord(15).ok());
  EXPECT_EQ(group.LocateRecord(15).status().code(), StatusCode::kOutOfRange);
}

TEST_F(GroupTest, LocateRecordRespectsDurabilityGate) {
  Group group(mm_, 1, 0, 0, 8);
  ASSERT_TRUE(group.AppendChunk(MakeChunk(1, 0, 1, 1, 3)).ok());
  ASSERT_TRUE(group.AppendChunk(MakeChunk(1, 0, 1, 2, 3)).ok());
  EXPECT_EQ(group.record_count(), 6u);
  EXPECT_EQ(group.durable_record_count(), 0u);
  EXPECT_FALSE(group.LocateRecord(0).ok());  // nothing durable yet
  group.MarkChunkDurable(0);
  EXPECT_EQ(group.durable_record_count(), 3u);
  EXPECT_TRUE(group.LocateRecord(2).ok());
  EXPECT_FALSE(group.LocateRecord(3).ok());  // second chunk unreplicated
  group.MarkChunkDurable(1);
  EXPECT_TRUE(group.LocateRecord(5).ok());
}

TEST_F(GroupTest, TrimRequiresClosedAndDurable) {
  Group group(mm_, 1, 0, 0, 2);
  auto chunk = MakeChunk(1, 0, 1, 1);
  ASSERT_TRUE(group.AppendChunk(chunk).ok());
  EXPECT_FALSE(group.Trim().ok());  // open
  group.Close();
  EXPECT_FALSE(group.Trim().ok());  // not durable
  group.MarkChunkDurable(0);
  size_t in_use_before = mm_.in_use();
  EXPECT_TRUE(group.Trim().ok());
  EXPECT_TRUE(group.trimmed());
  EXPECT_LT(mm_.in_use(), in_use_before);
}

class StreamletTest : public ::testing::Test {
 protected:
  StreamletTest() {
    config_.segment_size = 4096;
    config_.segments_per_group = 2;
    config_.active_groups_per_streamlet = 4;
  }
  MemoryManager mm_{4 << 20, 4096};
  StorageConfig config_;
};

TEST_F(StreamletTest, ProducerModQSlotSelection) {
  Streamlet sl(mm_, config_, 1, 0);
  // Producers 0 and 4 share slot 0 (Q=4); producer 1 gets slot 1.
  auto r0 = sl.AppendChunk(0, MakeChunk(1, 0, 0, 1));
  auto r4 = sl.AppendChunk(4, MakeChunk(1, 0, 4, 1));
  auto r1 = sl.AppendChunk(1, MakeChunk(1, 0, 1, 1));
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r4.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r0->active_slot, 0u);
  EXPECT_EQ(r4->active_slot, 0u);
  EXPECT_EQ(r1->active_slot, 1u);
  EXPECT_EQ(r0->group, r4->group);  // same slot, same active group
  EXPECT_NE(r0->group, r1->group);
  EXPECT_EQ(r4->locator.group_chunk_index, 1u);  // second chunk in group
}

TEST_F(StreamletTest, GroupRollsWhenQuotaExhausted) {
  Streamlet sl(mm_, config_, 1, 0);
  auto chunk = MakeChunk(1, 0, 0, 1, /*records=*/10);
  size_t per_group = ((4096 - kSegmentHeaderSize) / chunk.size()) * 2;
  GroupId first_group = ~GroupId{0};
  bool rolled = false;
  for (size_t i = 0; i < per_group + 1; ++i) {
    auto r = sl.AppendChunk(0, chunk);
    ASSERT_TRUE(r.ok());
    if (i == 0) first_group = r->group->id();
    if (r->group->id() != first_group) {
      rolled = true;
      EXPECT_TRUE(r->opened_new_group);
      // The previous group must be closed.
      EXPECT_TRUE(sl.GetGroup(first_group)->closed());
    }
  }
  EXPECT_TRUE(rolled);
}

TEST_F(StreamletTest, ParallelAppendsOnDistinctSlots) {
  Streamlet sl(mm_, config_, 1, 0);
  constexpr int kChunks = 200;
  std::vector<std::thread> threads;
  for (ProducerId p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 1; i <= kChunks; ++i) {
        auto chunk = MakeChunk(1, 0, p, ChunkSeq(i));
        auto r = sl.AppendChunk(p, chunk);
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sl.total_chunks(), 4u * kChunks);
  // Within each group, chunk indices are dense and ordered.
  for (GroupId g : sl.GroupIds()) {
    Group* group = sl.GetGroup(g);
    for (uint64_t i = 0; i < group->chunk_count(); ++i) {
      EXPECT_EQ(group->GetChunk(i).group_chunk_index, i);
    }
  }
}

TEST_F(StreamletTest, RecoveryGroupsPreserveMembership) {
  Streamlet sl(mm_, config_, 1, 0);
  // Simulate replaying chunks that belonged to original groups 5 and 9.
  auto a1 = sl.AppendRecoveryChunk(5, MakeChunk(1, 0, 1, 1));
  auto b1 = sl.AppendRecoveryChunk(9, MakeChunk(1, 0, 2, 1));
  auto a2 = sl.AppendRecoveryChunk(5, MakeChunk(1, 0, 1, 2));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a1->group, a2->group);
  EXPECT_NE(a1->group, b1->group);
  EXPECT_EQ(a2->locator.group_chunk_index, 1u);
}

TEST_F(StreamletTest, TrimBeforeFreesClosedDurableGroups) {
  Streamlet sl(mm_, config_, 1, 0);
  auto chunk = MakeChunk(1, 0, 0, 1, /*records=*/10);
  size_t per_group = ((4096 - kSegmentHeaderSize) / chunk.size()) * 2;
  for (size_t i = 0; i < per_group + 1; ++i) {
    ASSERT_TRUE(sl.AppendChunk(0, chunk).ok());
  }
  // First group is closed; mark all its chunks durable.
  GroupId first = sl.GroupIds().front();
  Group* g = sl.GetGroup(first);
  for (uint64_t i = 0; i < g->chunk_count(); ++i) g->MarkChunkDurable(i);
  EXPECT_EQ(sl.TrimBefore(sl.next_group_id()), 1u);
  EXPECT_TRUE(g->trimmed());
}

TEST_F(StreamletTest, SealActiveGroupsClosesAllSlots) {
  Streamlet sl(mm_, config_, 1, 0);
  // Touch three of the four slots.
  for (ProducerId p = 0; p < 3; ++p) {
    ASSERT_TRUE(sl.AppendChunk(p, MakeChunk(1, 0, p, 1)).ok());
  }
  sl.SealActiveGroups();
  for (GroupId g : sl.GroupIds()) {
    EXPECT_TRUE(sl.GetGroup(g)->closed());
  }
  // Appends after the seal roll into fresh groups (broker-level policy is
  // what rejects sealed-stream produces; storage stays usable, e.g. for
  // recovery replay).
  auto r = sl.AppendChunk(0, MakeChunk(1, 0, 0, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->opened_new_group);
}

TEST(StreamTest, SealClosesEveryStreamlet) {
  MemoryManager mm(1 << 20, 4096);
  StorageConfig cfg;
  cfg.segment_size = 4096;
  cfg.active_groups_per_streamlet = 2;
  Stream stream(mm, cfg, 3, "bounded");
  Streamlet* a = stream.AddStreamlet(0);
  Streamlet* b = stream.AddStreamlet(1);
  ASSERT_TRUE(a->AppendChunk(0, MakeChunk(3, 0, 0, 1)).ok());
  ASSERT_TRUE(b->AppendChunk(1, MakeChunk(3, 1, 1, 1)).ok());
  stream.Seal();
  for (Streamlet* sl : {a, b}) {
    for (GroupId g : sl->GroupIds()) {
      EXPECT_TRUE(sl->GetGroup(g)->closed());
    }
  }
}

TEST(StreamTest, StreamletLifecycle) {
  MemoryManager mm(1 << 20, 4096);
  StorageConfig cfg;
  cfg.segment_size = 4096;
  Stream stream(mm, cfg, 3, "clicks");
  EXPECT_EQ(stream.name(), "clicks");
  EXPECT_EQ(stream.GetStreamlet(0), nullptr);
  Streamlet* sl = stream.AddStreamlet(0);
  ASSERT_NE(sl, nullptr);
  EXPECT_EQ(stream.GetStreamlet(0), sl);
  EXPECT_EQ(stream.AddStreamlet(0), sl);  // idempotent
  stream.AddStreamlet(2);
  EXPECT_EQ(stream.StreamletIds(), (std::vector<StreamletId>{0, 2}));
}

}  // namespace
}  // namespace kera
