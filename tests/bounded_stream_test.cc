// Tests for bounded streams ("an object is simply represented as a
// bounded stream", §IV.A): sealing, producer rejection, consumer
// end-of-stream, interaction with recovery.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

MiniClusterConfig Config(int workers) {
  MiniClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = workers;
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  return cfg;
}

TEST(BoundedStreamTest, SealRejectsFurtherProduces) {
  MiniCluster cluster(Config(0));
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("obj", opts);
  ASSERT_TRUE(info.ok());

  ChunkBuilder b(512);
  b.Start(info->stream, 0, 1);
  ASSERT_TRUE(b.AppendValue(AsBytes("before seal")));
  auto chunk = b.Seal(1);
  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info->stream;
  req.chunks = {chunk};
  NodeId leader = info->streamlet_brokers[0];
  ASSERT_EQ(cluster.broker(leader).HandleProduce(req).status,
            StatusCode::kOk);

  ASSERT_TRUE(cluster.coordinator().SealStream("obj").ok());
  // Info reflects the seal.
  auto fresh = cluster.coordinator().GetStreamInfo("obj");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->sealed);

  // Further appends rejected.
  b.Start(info->stream, 0, 1);
  ASSERT_TRUE(b.AppendValue(AsBytes("after seal")));
  auto chunk2 = b.Seal(2);
  req.chunks = {chunk2};
  EXPECT_EQ(cluster.broker(leader).HandleProduce(req).status,
            StatusCode::kSegmentClosed);
}

TEST(BoundedStreamTest, SealViaRpc) {
  MiniCluster cluster(Config(0));
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("obj", opts).ok());

  rpc::SealStreamRequest req;
  req.name = "obj";
  rpc::Writer body;
  req.Encode(body);
  auto raw = cluster.network().Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kSealStream, body));
  ASSERT_TRUE(raw.ok());
  rpc::Reader r(*raw);
  auto resp = rpc::SealStreamResponse::Decode(r);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);

  // Sealing a missing stream fails.
  req.name = "missing";
  rpc::Writer body2;
  req.Encode(body2);
  raw = cluster.network().Call(kCoordinatorNode,
                               rpc::Frame(rpc::Opcode::kSealStream, body2));
  rpc::Reader r2(*raw);
  EXPECT_EQ(rpc::SealStreamResponse::Decode(r2)->status,
            StatusCode::kNotFound);
}

TEST(BoundedStreamTest, ConsumerReachesEndOfStream) {
  MiniCluster cluster(Config(2));
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("obj", opts).ok());

  constexpr int kRecords = 800;
  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "obj";
  pc.chunk_size = 512;
  Producer producer(pc, cluster.network());
  ASSERT_TRUE(producer.Connect().ok());
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(producer.Send(AsBytes("rec-" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(producer.Close().ok());
  ASSERT_TRUE(cluster.coordinator().SealStream("obj").ok());

  // Consumer connects AFTER the seal and must drain and terminate.
  ConsumerConfig cc;
  cc.stream = "obj";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::set<std::string> seen;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!consumer.Finished() &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(128)) {
      seen.emplace(reinterpret_cast<const char*>(rec.value.data()),
                   rec.value.size());
    }
  }
  // Drain anything still buffered.
  for (auto& rec : consumer.Poll(100000)) {
    seen.emplace(reinterpret_cast<const char*>(rec.value.data()),
                 rec.value.size());
  }
  EXPECT_TRUE(consumer.Finished());
  EXPECT_EQ(seen.size(), size_t(kRecords));
  consumer.Close();
}

TEST(BoundedStreamTest, EmptySealedStreamFinishesImmediately) {
  MiniCluster cluster(Config(2));
  rpc::StreamOptions opts;
  opts.num_streamlets = 4;
  ASSERT_TRUE(cluster.coordinator().CreateStream("empty", opts).ok());
  ASSERT_TRUE(cluster.coordinator().SealStream("empty").ok());

  ConsumerConfig cc;
  cc.stream = "empty";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!consumer.Finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(consumer.Finished());
  EXPECT_TRUE(consumer.Poll(10).empty());
  consumer.Close();
}

TEST(BoundedStreamTest, RecoveryReplaysIntoSealedStream) {
  MiniClusterConfig cfg = Config(0);
  cfg.nodes = 4;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("obj", opts);
  ASSERT_TRUE(info.ok());

  // Produce to both streamlets, then seal.
  for (StreamletId sl = 0; sl < 2; ++sl) {
    for (int i = 1; i <= 10; ++i) {
      ChunkBuilder b(512);
      b.Start(info->stream, sl, 1);
      ASSERT_TRUE(b.AppendValue(AsBytes("x" + std::to_string(i))));
      auto chunk = b.Seal(ChunkSeq(i));
      rpc::ProduceRequest req;
      req.producer = 1;
      req.stream = info->stream;
      req.chunks = {chunk};
      ASSERT_EQ(cluster.broker(info->streamlet_brokers[sl])
                    .HandleProduce(req)
                    .status,
                StatusCode::kOk);
    }
  }
  ASSERT_TRUE(cluster.coordinator().SealStream("obj").ok());

  // Crash a leader; recovery must replay into the sealed stream (the
  // recovery flag bypasses the seal check) without reopening it to
  // producers.
  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  auto replayed = cluster.coordinator().RecoverNode(victim);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_GT(*replayed, 0u);

  auto fresh = cluster.coordinator().GetStreamInfo("obj");
  EXPECT_TRUE(fresh->sealed);
  NodeId new_leader = fresh->streamlet_brokers[0];
  ChunkBuilder b(512);
  b.Start(info->stream, 0, 2);
  ASSERT_TRUE(b.AppendValue(AsBytes("rejected")));
  auto chunk = b.Seal(1);
  rpc::ProduceRequest req;
  req.producer = 2;
  req.stream = info->stream;
  req.chunks = {chunk};
  EXPECT_EQ(cluster.broker(new_leader).HandleProduce(req).status,
            StatusCode::kSegmentClosed);
}

}  // namespace
}  // namespace kera
