// chaos_soak: long-running chaos sweep for soak testing and CI stages.
// Runs a contiguous band of seeds through the deterministic chaos harness
// and emits a machine-readable JSON summary (schedules run, faults by
// kind, invariant checks performed, workload counters). Any failing seed
// dumps its replayable trace and fails the process.
//
//   chaos_soak [--schedules=N] [--events=N] [--seed_base=N] [--shards=N]
//              [--recovery_parallelism=N] [--memory_budget=BYTES]
//              [--exactly_once] [--out=PATH]
//
// --shards=N runs every schedule against brokers with N shared-nothing
// shards (see BrokerConfig::shards). The schedule generator is untouched:
// seed->schedule mapping and trace format are identical at any shard
// count, so a failure found at --shards=2 replays from the same trace.
// --recovery_parallelism=N sets the coordinator's recovery fan-out (see
// CoordinatorConfig): under the single-threaded chaos network the engine
// runs serially and models the fan-out, so traces stay identical at any
// value while the scatter/batched-read/lane machinery is exercised.
// --memory_budget=BYTES caps each broker's sealed-segment DRAM (see
// BrokerConfig::memory_budget_bytes), forcing mid-schedule spill/evict/
// cold-read cycles. Spill decisions are a pure function of seal order
// and budget, so traces stay byte-identical to --memory_budget=0.
// --exactly_once turns on end-to-end exactly-once (RunOptions::
// exactly_once): producers get coordinator epochs, every consume event
// durably commits consumer cursors, restarts resume from broker offsets,
// and the redelivery invariant tightens to zero. The soak JSON then
// carries the dedup-hit / fence / offset-commit counters.
//
// Environment overrides (flags win): KERA_CHAOS_SCHEDULES,
// KERA_CHAOS_EVENTS, KERA_BROKER_SHARDS — the same knobs
// scripts/check.sh uses to bound the sanitizer stages.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "chaos/chaos_harness.h"
#include "chaos/fault_schedule.h"
#include "common/host_info.h"

namespace {

uint64_t ParseU64(const char* s, const char* what) {
  char* end = nullptr;
  uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "chaos_soak: bad %s value: %s\n", what, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t schedules = 1000;
  uint32_t events = 60;
  uint64_t seed_base = 1;
  uint32_t shards = 1;
  uint32_t recovery_parallelism = 1;
  uint64_t memory_budget = 0;
  bool exactly_once = false;
  std::string out_path = "BENCH_chaos.json";

  if (const char* env = std::getenv("KERA_CHAOS_SCHEDULES")) {
    schedules = ParseU64(env, "KERA_CHAOS_SCHEDULES");
  }
  if (const char* env = std::getenv("KERA_CHAOS_EVENTS")) {
    events = uint32_t(ParseU64(env, "KERA_CHAOS_EVENTS"));
  }
  if (const char* env = std::getenv("KERA_BROKER_SHARDS")) {
    uint64_t v = ParseU64(env, "KERA_BROKER_SHARDS");
    if (v > 0) shards = uint32_t(v);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--schedules=", 12) == 0) {
      schedules = ParseU64(arg + 12, "--schedules");
    } else if (std::strncmp(arg, "--events=", 9) == 0) {
      events = uint32_t(ParseU64(arg + 9, "--events"));
    } else if (std::strncmp(arg, "--seed_base=", 12) == 0) {
      seed_base = ParseU64(arg + 12, "--seed_base");
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = uint32_t(ParseU64(arg + 9, "--shards"));
      if (shards == 0) shards = 1;
    } else if (std::strncmp(arg, "--recovery_parallelism=", 23) == 0) {
      recovery_parallelism = uint32_t(ParseU64(arg + 23,
                                               "--recovery_parallelism"));
      if (recovery_parallelism == 0) recovery_parallelism = 1;
    } else if (std::strncmp(arg, "--memory_budget=", 16) == 0) {
      memory_budget = ParseU64(arg + 16, "--memory_budget");
    } else if (std::strcmp(arg, "--exactly_once") == 0) {
      exactly_once = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--schedules=N] [--events=N] "
                   "[--seed_base=N] [--shards=N] "
                   "[--recovery_parallelism=N] [--memory_budget=BYTES] "
                   "[--exactly_once] [--out=PATH]\n");
      return 2;
    }
  }
  kera::chaos::RunOptions run_options;
  run_options.broker_shards = shards;
  run_options.recovery_parallelism = recovery_parallelism;
  run_options.memory_budget_bytes = memory_budget;
  run_options.exactly_once = exactly_once;

  using Clock = std::chrono::steady_clock;
  auto start = Clock::now();

  std::map<std::string, uint64_t> faults_by_kind;
  kera::chaos::RunResult total;
  uint64_t ran = 0;
  for (uint64_t i = 0; i < schedules; ++i) {
    uint64_t seed = seed_base + i;
    auto schedule = kera::chaos::GenerateSchedule(seed, events);
    for (const auto& ev : schedule.events) {
      ++faults_by_kind[kera::chaos::FaultKindName(ev.kind)];
    }
    auto r = kera::chaos::RunSchedule(schedule, run_options);
    if (!r.ok) {
      std::string trace_path = "chaos_failure_" + std::to_string(seed) +
                               ".trace";
      if (FILE* f = std::fopen(trace_path.c_str(), "w")) {
        std::fwrite(r.trace.data(), 1, r.trace.size(), f);
        std::fclose(f);
      }
      std::fprintf(stderr,
                   "chaos_soak: FAILED seed=%" PRIu64 " event=%zu shards=%u\n"
                   "  %s\n"
                   "  trace: %s\n  replay: chaos_test --chaos_seed=%" PRIu64
                   "\n",
                   seed, r.failed_event, shards, r.failure.c_str(),
                   trace_path.c_str(), seed);
      return 1;
    }
    ++ran;
    total.events_run += r.events_run;
    total.events_skipped += r.events_skipped;
    total.checks += r.checks;
    total.acked_chunks += r.acked_chunks;
    total.consumed_chunks += r.consumed_chunks;
    total.redelivered_chunks += r.redelivered_chunks;
    total.retried_sends += r.retried_sends;
    total.abandoned_sends += r.abandoned_sends;
    total.dedup_hits += r.dedup_hits;
    total.fenced_rejections += r.fenced_rejections;
    total.offset_commits += r.offset_commits;
    total.recovery_replayed += r.recovery_replayed;
    total.recovery_tasks += r.recovery_tasks;
    total.recovery_bytes += r.recovery_bytes;
    total.recovery_read_rpcs += r.recovery_read_rpcs;
    total.recovery_read_rpcs_saved += r.recovery_read_rpcs_saved;
    total.recovery_peak_fanout =
        std::max(total.recovery_peak_fanout, r.recovery_peak_fanout);
    total.recovery_task_p50_us =
        std::max(total.recovery_task_p50_us, r.recovery_task_p50_us);
    total.recovery_task_p99_us =
        std::max(total.recovery_task_p99_us, r.recovery_task_p99_us);
    total.power_loss_events += r.power_loss_events;
    total.power_loss_recovered += r.power_loss_recovered;
    total.backup_flush_groups += r.backup_flush_groups;
    total.backup_fsyncs += r.backup_fsyncs;
    total.backup_bytes_flushed += r.backup_bytes_flushed;
    total.net.calls += r.net.calls;
    total.net.dropped_requests += r.net.dropped_requests;
    total.net.dropped_responses += r.net.dropped_responses;
    total.net.duplicated_requests += r.net.duplicated_requests;
    total.net.partitioned_calls += r.net.partitioned_calls;
    total.net.delays_injected += r.net.delays_injected;
    total.segments_spilled += r.segments_spilled;
    total.segments_evicted += r.segments_evicted;
    total.cold_reads += r.cold_reads;
    total.cold_cache_hits += r.cold_cache_hits;
    total.cold_cache_misses += r.cold_cache_misses;
    if (ran % 100 == 0) {
      std::fprintf(stderr, "chaos_soak: %" PRIu64 "/%" PRIu64 " schedules\n",
                   ran, schedules);
    }
  }

  double secs = std::chrono::duration<double>(Clock::now() - start).count();

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "chaos_soak: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"nproc\": %u,\n", kera::HostNproc());
  std::fprintf(out, "  \"cpu_model\": \"%s\",\n",
               kera::HostCpuModel().c_str());
  std::fprintf(out, "  \"broker_shards\": %u,\n", shards);
  std::fprintf(out, "  \"recovery_parallelism\": %u,\n",
               recovery_parallelism);
  std::fprintf(out, "  \"memory_budget_bytes\": %" PRIu64 ",\n",
               memory_budget);
  std::fprintf(out, "  \"exactly_once\": %s,\n",
               exactly_once ? "true" : "false");
  std::fprintf(out, "  \"schedules\": %" PRIu64 ",\n", ran);
  std::fprintf(out, "  \"events_per_schedule\": %u,\n", events);
  std::fprintf(out, "  \"seed_base\": %" PRIu64 ",\n", seed_base);
  std::fprintf(out, "  \"seconds\": %.3f,\n", secs);
  std::fprintf(out, "  \"faults_by_kind\": {\n");
  size_t i = 0;
  for (const auto& [kind, count] : faults_by_kind) {
    std::fprintf(out, "    \"%s\": %" PRIu64 "%s\n", kind.c_str(), count,
                 ++i == faults_by_kind.size() ? "" : ",");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"events_run\": %" PRIu64 ",\n", total.events_run);
  std::fprintf(out, "  \"events_skipped\": %" PRIu64 ",\n",
               total.events_skipped);
  std::fprintf(out, "  \"invariant_checks\": %" PRIu64 ",\n", total.checks);
  std::fprintf(out, "  \"acked_chunks\": %" PRIu64 ",\n", total.acked_chunks);
  std::fprintf(out, "  \"consumed_chunks\": %" PRIu64 ",\n",
               total.consumed_chunks);
  std::fprintf(out, "  \"redelivered_chunks\": %" PRIu64 ",\n",
               total.redelivered_chunks);
  std::fprintf(out, "  \"retried_sends\": %" PRIu64 ",\n",
               total.retried_sends);
  std::fprintf(out, "  \"abandoned_sends\": %" PRIu64 ",\n",
               total.abandoned_sends);
  std::fprintf(out, "  \"dedup_hits\": %" PRIu64 ",\n", total.dedup_hits);
  std::fprintf(out, "  \"fenced_rejections\": %" PRIu64 ",\n",
               total.fenced_rejections);
  std::fprintf(out, "  \"offset_commits\": %" PRIu64 ",\n",
               total.offset_commits);
  std::fprintf(out, "  \"recovery_replayed\": %" PRIu64 ",\n",
               total.recovery_replayed);
  std::fprintf(out, "  \"recovery_tasks\": %" PRIu64 ",\n",
               total.recovery_tasks);
  std::fprintf(out, "  \"recovery_bytes\": %" PRIu64 ",\n",
               total.recovery_bytes);
  std::fprintf(out, "  \"recovery_read_rpcs\": %" PRIu64 ",\n",
               total.recovery_read_rpcs);
  std::fprintf(out, "  \"recovery_read_rpcs_saved\": %" PRIu64 ",\n",
               total.recovery_read_rpcs_saved);
  std::fprintf(out, "  \"recovery_peak_fanout\": %" PRIu64 ",\n",
               total.recovery_peak_fanout);
  std::fprintf(out, "  \"recovery_task_p50_us_max\": %" PRIu64 ",\n",
               total.recovery_task_p50_us);
  std::fprintf(out, "  \"recovery_task_p99_us_max\": %" PRIu64 ",\n",
               total.recovery_task_p99_us);
  std::fprintf(out, "  \"power_loss_events\": %" PRIu64 ",\n",
               total.power_loss_events);
  std::fprintf(out, "  \"power_loss_recovered\": %" PRIu64 ",\n",
               total.power_loss_recovered);
  std::fprintf(out, "  \"backup_flush_groups\": %" PRIu64 ",\n",
               total.backup_flush_groups);
  std::fprintf(out, "  \"backup_fsyncs\": %" PRIu64 ",\n",
               total.backup_fsyncs);
  std::fprintf(out, "  \"backup_bytes_flushed\": %" PRIu64 ",\n",
               total.backup_bytes_flushed);
  std::fprintf(out, "  \"net_calls\": %" PRIu64 ",\n", total.net.calls);
  std::fprintf(out, "  \"net_dropped_requests\": %" PRIu64 ",\n",
               total.net.dropped_requests);
  std::fprintf(out, "  \"net_dropped_responses\": %" PRIu64 ",\n",
               total.net.dropped_responses);
  std::fprintf(out, "  \"net_duplicated_requests\": %" PRIu64 ",\n",
               total.net.duplicated_requests);
  std::fprintf(out, "  \"net_partitioned_calls\": %" PRIu64 ",\n",
               total.net.partitioned_calls);
  std::fprintf(out, "  \"net_delays_injected\": %" PRIu64 ",\n",
               total.net.delays_injected);
  std::fprintf(out, "  \"segments_spilled\": %" PRIu64 ",\n",
               total.segments_spilled);
  std::fprintf(out, "  \"segments_evicted\": %" PRIu64 ",\n",
               total.segments_evicted);
  std::fprintf(out, "  \"cold_reads\": %" PRIu64 ",\n", total.cold_reads);
  std::fprintf(out, "  \"cold_cache_hits\": %" PRIu64 ",\n",
               total.cold_cache_hits);
  std::fprintf(out, "  \"cold_cache_misses\": %" PRIu64 "\n",
               total.cold_cache_misses);
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::fprintf(stderr,
               "chaos_soak: %" PRIu64 " schedules, %" PRIu64
               " events, %" PRIu64 " invariant checks in %.1fs -> %s\n",
               ran, total.events_run, total.checks, secs, out_path.c_str());
  return 0;
}
