// vlog_sim: command-line explorer for the simulated 4-broker cluster.
// Runs one experiment per invocation and prints the paper's metrics.
//
//   $ vlog_sim --system=kera --streams=256 --replication=3 --vlogs=4
//   $ vlog_sim --system=kafka --streams=128 --chunk-kb=16 --producers=16
//   $ vlog_sim --figure=12 --streams=512      # per-figure presets
//
// Flags (defaults in brackets):
//   --system=kera|kafka [kera]     --streams=N [32]
//   --streamlets=N [1]             --q=N [1]
//   --replication=N [3]            --vlogs=N [4]
//   --policy=shared|subpart [shared]
//   --chunk-kb=N [1]               --producers=N [4]
//   --consumers=N [producers]      --request-chunks=N [16]
//   --consumer-depth=N [1]         --seconds=F [0.5]
//   --figure=8..21                 (applies that figure's base preset
//                                   before the remaining flags)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/figure_harness.h"

using namespace kera::sim;

namespace {

struct Flags {
  std::string system = "kera";
  uint32_t streams = 32;
  uint32_t streamlets = 1;
  uint32_t q = 1;
  uint32_t replication = 3;
  uint32_t vlogs = 4;
  std::string policy = "shared";
  uint32_t chunk_kb = 1;
  uint32_t producers = 4;
  int consumers = -1;  // -1 = same as producers
  uint32_t request_chunks = 16;
  uint32_t consumer_depth = 1;
  double seconds = 0.5;
  int figure = 0;
  bool explicit_system = false;
  bool explicit_clients = false;
};

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  out = arg + prefix.size();
  return true;
}

template <typename T>
bool ParseNum(const char* arg, const char* name, T& out) {
  std::string v;
  if (!ParseFlag(arg, name, v)) return false;
  out = T(std::strtod(v.c_str(), nullptr));
  return true;
}

void Usage() {
  std::fprintf(stderr,
               "usage: vlog_sim [--system=kera|kafka] [--streams=N]\n"
               "  [--streamlets=N] [--q=N] [--replication=N] [--vlogs=N]\n"
               "  [--policy=shared|subpart] [--chunk-kb=N] [--producers=N]\n"
               "  [--consumers=N] [--request-chunks=N] [--consumer-depth=N]\n"
               "  [--seconds=F] [--figure=8..21]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string sval;
    if (ParseFlag(argv[i], "system", flags.system)) {
      flags.explicit_system = true;
    } else if (ParseNum(argv[i], "streams", flags.streams) ||
               ParseNum(argv[i], "streamlets", flags.streamlets) ||
               ParseNum(argv[i], "q", flags.q) ||
               ParseNum(argv[i], "replication", flags.replication) ||
               ParseNum(argv[i], "vlogs", flags.vlogs) ||
               ParseNum(argv[i], "chunk-kb", flags.chunk_kb) ||
               ParseNum(argv[i], "request-chunks", flags.request_chunks) ||
               ParseNum(argv[i], "consumer-depth", flags.consumer_depth) ||
               ParseNum(argv[i], "seconds", flags.seconds) ||
               ParseNum(argv[i], "figure", flags.figure)) {
      // handled
    } else if (ParseNum(argv[i], "producers", flags.producers)) {
      flags.explicit_clients = true;
    } else if (ParseNum(argv[i], "consumers", flags.consumers)) {
      // handled
    } else if (ParseFlag(argv[i], "policy", flags.policy)) {
      // handled
    } else if (std::string ignored;
               ParseFlag(argv[i], "sweep", ignored) ||
               ParseFlag(argv[i], "values", ignored)) {
      // parsed again after the base config is built
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }

  System system =
      flags.system == "kafka" ? System::kKafka : System::kKerA;
  SimExperimentConfig cfg;
  switch (flags.figure) {
    case 0:
      cfg = LatencyBase(system, flags.producers,
                        flags.consumers < 0 ? flags.producers
                                            : uint32_t(flags.consumers),
                        flags.streams, flags.replication);
      cfg.streamlets_per_stream = flags.streamlets;
      cfg.q = flags.q;
      cfg.vlogs_per_broker = flags.vlogs;
      cfg.vlog_policy = flags.policy == "subpart"
                            ? kera::rpc::VlogPolicy::kPerSubPartition
                            : kera::rpc::VlogPolicy::kSharedPerBroker;
      cfg.chunk_size = size_t(flags.chunk_kb) << 10;
      cfg.request_max_chunks = flags.request_chunks;
      cfg.consumer_chunks_per_partition = flags.consumer_depth;
      break;
    case 8:
      cfg = Fig8(system, flags.streams, flags.replication);
      break;
    case 9:
      cfg = Fig9(system, flags.producers, flags.replication);
      break;
    case 10:
      cfg = Fig10(system, flags.streams, flags.vlogs);
      break;
    case 11:
      cfg = Fig11(system, flags.producers, size_t(flags.chunk_kb) << 10);
      break;
    case 12:
      cfg = Fig12(flags.streams, flags.replication);
      break;
    case 13:
      cfg = Fig13(flags.streams, flags.vlogs);
      break;
    case 14:
    case 15:
    case 16:
      cfg = Fig14to16(flags.streams, flags.vlogs, flags.replication);
      break;
    case 17:
    case 18:
    case 19:
    case 20:
      cfg = Fig17to20(flags.explicit_clients ? flags.producers : 8,
                      size_t(flags.chunk_kb ? flags.chunk_kb : 64) << 10,
                      flags.replication);
      break;
    case 21:
      cfg = Fig21(flags.vlogs, size_t(flags.chunk_kb ? flags.chunk_kb : 64)
                                   << 10);
      break;
    default:
      std::fprintf(stderr, "no such figure: %d\n", flags.figure);
      Usage();
      return 2;
  }
  cfg.measure_seconds = flags.seconds;

  // --sweep=vlogs|streams|chunk-kb|producers --values=a,b,c runs one
  // experiment per value and prints a series (one row each).
  std::vector<uint32_t> sweep_values;
  std::string sweep_dim;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "sweep", sweep_dim)) continue;
    if (ParseFlag(argv[i], "values", v)) {
      size_t pos = 0;
      while (pos < v.size()) {
        size_t comma = v.find(',', pos);
        if (comma == std::string::npos) comma = v.size();
        sweep_values.push_back(
            uint32_t(std::strtoul(v.substr(pos, comma - pos).c_str(),
                                  nullptr, 10)));
        pos = comma + 1;
      }
    }
  }
  if (sweep_values.empty()) sweep_values.push_back(0);

  for (uint32_t value : sweep_values) {
    SimExperimentConfig run = cfg;
    if (sweep_dim == "vlogs") {
      run.vlogs_per_broker = value;
    } else if (sweep_dim == "streams") {
      run.streams = value;
    } else if (sweep_dim == "chunk-kb") {
      run.chunk_size = size_t(value) << 10;
    } else if (sweep_dim == "producers") {
      run.producers = value;
      if (run.consumers > 0) run.consumers = value;
    } else if (!sweep_dim.empty()) {
      std::fprintf(stderr, "unknown sweep dimension: %s\n",
                   sweep_dim.c_str());
      return 2;
    }
    auto result = RunSimExperiment(run);
    char label[128];
    std::snprintf(label, sizeof(label),
                  "%s streams=%u R=%u chunk=%zuKB vlogs=%u",
                  run.system == System::kKafka ? "kafka" : "kera",
                  run.streams * run.streamlets_per_stream,
                  run.replication_factor, run.chunk_size >> 10,
                  run.vlogs_per_broker);
    std::printf("%s\n", FormatResult(label, result).c_str());
    std::printf("  records/chunk=%llu  produce_requests=%llu  "
                "core_util=%.2f  dispatch_util=%.2f  p99=%.0f us  "
                "e2e_p50=%.0f us  e2e_p99=%.0f us\n",
                (unsigned long long)result.records_per_chunk,
                (unsigned long long)result.produce_requests,
                result.broker_core_utilization, result.dispatch_utilization,
                result.produce_latency_p99_us, result.e2e_latency_p50_us,
                result.e2e_latency_p99_us);
  }
  return 0;
}
