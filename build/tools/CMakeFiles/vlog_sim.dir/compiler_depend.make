# Empty compiler generated dependencies file for vlog_sim.
# This may be replaced when dependencies are built.
