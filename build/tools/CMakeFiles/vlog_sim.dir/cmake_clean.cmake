file(REMOVE_RECURSE
  "CMakeFiles/vlog_sim.dir/vlog_sim_cli.cc.o"
  "CMakeFiles/vlog_sim.dir/vlog_sim_cli.cc.o.d"
  "vlog_sim"
  "vlog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
