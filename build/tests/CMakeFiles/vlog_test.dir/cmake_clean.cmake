file(REMOVE_RECURSE
  "CMakeFiles/vlog_test.dir/vlog_test.cc.o"
  "CMakeFiles/vlog_test.dir/vlog_test.cc.o.d"
  "vlog_test"
  "vlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
