# Empty dependencies file for vlog_test.
# This may be replaced when dependencies are built.
