file(REMOVE_RECURSE
  "CMakeFiles/coordinator_test.dir/coordinator_test.cc.o"
  "CMakeFiles/coordinator_test.dir/coordinator_test.cc.o.d"
  "coordinator_test"
  "coordinator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
