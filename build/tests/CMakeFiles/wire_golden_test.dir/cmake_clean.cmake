file(REMOVE_RECURSE
  "CMakeFiles/wire_golden_test.dir/wire_golden_test.cc.o"
  "CMakeFiles/wire_golden_test.dir/wire_golden_test.cc.o.d"
  "wire_golden_test"
  "wire_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
