file(REMOVE_RECURSE
  "CMakeFiles/wire_test.dir/wire_test.cc.o"
  "CMakeFiles/wire_test.dir/wire_test.cc.o.d"
  "wire_test"
  "wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
