file(REMOVE_RECURSE
  "CMakeFiles/recovery_property_test.dir/recovery_property_test.cc.o"
  "CMakeFiles/recovery_property_test.dir/recovery_property_test.cc.o.d"
  "recovery_property_test"
  "recovery_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
