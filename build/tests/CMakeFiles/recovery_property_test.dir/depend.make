# Empty dependencies file for recovery_property_test.
# This may be replaced when dependencies are built.
