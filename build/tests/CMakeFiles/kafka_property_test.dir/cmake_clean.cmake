file(REMOVE_RECURSE
  "CMakeFiles/kafka_property_test.dir/kafka_property_test.cc.o"
  "CMakeFiles/kafka_property_test.dir/kafka_property_test.cc.o.d"
  "kafka_property_test"
  "kafka_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kafka_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
