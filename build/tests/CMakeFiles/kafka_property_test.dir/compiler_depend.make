# Empty compiler generated dependencies file for kafka_property_test.
# This may be replaced when dependencies are built.
