# Empty dependencies file for client_edge_test.
# This may be replaced when dependencies are built.
