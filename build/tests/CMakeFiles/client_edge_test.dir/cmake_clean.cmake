file(REMOVE_RECURSE
  "CMakeFiles/client_edge_test.dir/client_edge_test.cc.o"
  "CMakeFiles/client_edge_test.dir/client_edge_test.cc.o.d"
  "client_edge_test"
  "client_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
