file(REMOVE_RECURSE
  "CMakeFiles/broker_test.dir/broker_test.cc.o"
  "CMakeFiles/broker_test.dir/broker_test.cc.o.d"
  "broker_test"
  "broker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
