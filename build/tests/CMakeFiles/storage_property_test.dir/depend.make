# Empty dependencies file for storage_property_test.
# This may be replaced when dependencies are built.
