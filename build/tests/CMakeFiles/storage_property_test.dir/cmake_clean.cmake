file(REMOVE_RECURSE
  "CMakeFiles/storage_property_test.dir/storage_property_test.cc.o"
  "CMakeFiles/storage_property_test.dir/storage_property_test.cc.o.d"
  "storage_property_test"
  "storage_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
