file(REMOVE_RECURSE
  "CMakeFiles/kafka_test.dir/kafka_test.cc.o"
  "CMakeFiles/kafka_test.dir/kafka_test.cc.o.d"
  "kafka_test"
  "kafka_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kafka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
