# Empty dependencies file for kafka_test.
# This may be replaced when dependencies are built.
