file(REMOVE_RECURSE
  "CMakeFiles/consume_protocol_test.dir/consume_protocol_test.cc.o"
  "CMakeFiles/consume_protocol_test.dir/consume_protocol_test.cc.o.d"
  "consume_protocol_test"
  "consume_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consume_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
