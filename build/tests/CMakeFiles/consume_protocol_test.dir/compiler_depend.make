# Empty compiler generated dependencies file for consume_protocol_test.
# This may be replaced when dependencies are built.
