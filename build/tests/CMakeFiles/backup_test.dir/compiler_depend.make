# Empty compiler generated dependencies file for backup_test.
# This may be replaced when dependencies are built.
