file(REMOVE_RECURSE
  "CMakeFiles/backup_test.dir/backup_test.cc.o"
  "CMakeFiles/backup_test.dir/backup_test.cc.o.d"
  "backup_test"
  "backup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
