file(REMOVE_RECURSE
  "CMakeFiles/wire_fuzz_test.dir/wire_fuzz_test.cc.o"
  "CMakeFiles/wire_fuzz_test.dir/wire_fuzz_test.cc.o.d"
  "wire_fuzz_test"
  "wire_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
