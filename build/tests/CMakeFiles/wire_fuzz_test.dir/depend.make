# Empty dependencies file for wire_fuzz_test.
# This may be replaced when dependencies are built.
