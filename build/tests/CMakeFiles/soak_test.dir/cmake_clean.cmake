file(REMOVE_RECURSE
  "CMakeFiles/soak_test.dir/soak_test.cc.o"
  "CMakeFiles/soak_test.dir/soak_test.cc.o.d"
  "soak_test"
  "soak_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
