file(REMOVE_RECURSE
  "CMakeFiles/bounded_stream_test.dir/bounded_stream_test.cc.o"
  "CMakeFiles/bounded_stream_test.dir/bounded_stream_test.cc.o.d"
  "bounded_stream_test"
  "bounded_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
