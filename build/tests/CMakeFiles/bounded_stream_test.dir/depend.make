# Empty dependencies file for bounded_stream_test.
# This may be replaced when dependencies are built.
