# Empty dependencies file for vlog_property_test.
# This may be replaced when dependencies are built.
