file(REMOVE_RECURSE
  "CMakeFiles/vlog_property_test.dir/vlog_property_test.cc.o"
  "CMakeFiles/vlog_property_test.dir/vlog_property_test.cc.o.d"
  "vlog_property_test"
  "vlog_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
