file(REMOVE_RECURSE
  "CMakeFiles/example_multi_stream_ingestion.dir/multi_stream_ingestion.cpp.o"
  "CMakeFiles/example_multi_stream_ingestion.dir/multi_stream_ingestion.cpp.o.d"
  "example_multi_stream_ingestion"
  "example_multi_stream_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_stream_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
