# Empty dependencies file for example_multi_stream_ingestion.
# This may be replaced when dependencies are built.
