file(REMOVE_RECURSE
  "CMakeFiles/example_crash_recovery.dir/crash_recovery.cpp.o"
  "CMakeFiles/example_crash_recovery.dir/crash_recovery.cpp.o.d"
  "example_crash_recovery"
  "example_crash_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
