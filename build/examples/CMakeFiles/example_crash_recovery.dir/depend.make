# Empty dependencies file for example_crash_recovery.
# This may be replaced when dependencies are built.
