# Empty compiler generated dependencies file for example_kera_vs_kafka.
# This may be replaced when dependencies are built.
