file(REMOVE_RECURSE
  "CMakeFiles/example_kera_vs_kafka.dir/kera_vs_kafka.cpp.o"
  "CMakeFiles/example_kera_vs_kafka.dir/kera_vs_kafka.cpp.o.d"
  "example_kera_vs_kafka"
  "example_kera_vs_kafka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kera_vs_kafka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
