# Empty compiler generated dependencies file for example_bounded_object.
# This may be replaced when dependencies are built.
