file(REMOVE_RECURSE
  "CMakeFiles/example_bounded_object.dir/bounded_object.cpp.o"
  "CMakeFiles/example_bounded_object.dir/bounded_object.cpp.o.d"
  "example_bounded_object"
  "example_bounded_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bounded_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
