file(REMOVE_RECURSE
  "CMakeFiles/example_latency_throughput_tradeoff.dir/latency_throughput_tradeoff.cpp.o"
  "CMakeFiles/example_latency_throughput_tradeoff.dir/latency_throughput_tradeoff.cpp.o.d"
  "example_latency_throughput_tradeoff"
  "example_latency_throughput_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_latency_throughput_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
