# Empty dependencies file for example_latency_throughput_tradeoff.
# This may be replaced when dependencies are built.
