# Empty compiler generated dependencies file for example_keyed_kv_view.
# This may be replaced when dependencies are built.
