# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_keyed_kv_view.
