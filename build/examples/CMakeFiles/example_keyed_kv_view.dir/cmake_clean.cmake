file(REMOVE_RECURSE
  "CMakeFiles/example_keyed_kv_view.dir/keyed_kv_view.cpp.o"
  "CMakeFiles/example_keyed_kv_view.dir/keyed_kv_view.cpp.o.d"
  "example_keyed_kv_view"
  "example_keyed_kv_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_keyed_kv_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
