file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_low_latency.dir/bench_fig10_low_latency.cc.o"
  "CMakeFiles/bench_fig10_low_latency.dir/bench_fig10_low_latency.cc.o.d"
  "bench_fig10_low_latency"
  "bench_fig10_low_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_low_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
