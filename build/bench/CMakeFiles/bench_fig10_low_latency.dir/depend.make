# Empty dependencies file for bench_fig10_low_latency.
# This may be replaced when dependencies are built.
