# Empty compiler generated dependencies file for bench_fig09_scale_clients.
# This may be replaced when dependencies are built.
