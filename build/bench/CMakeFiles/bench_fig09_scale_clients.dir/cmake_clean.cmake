file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_scale_clients.dir/bench_fig09_scale_clients.cc.o"
  "CMakeFiles/bench_fig09_scale_clients.dir/bench_fig09_scale_clients.cc.o.d"
  "bench_fig09_scale_clients"
  "bench_fig09_scale_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_scale_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
