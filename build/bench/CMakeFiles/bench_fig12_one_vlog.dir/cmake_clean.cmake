file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_one_vlog.dir/bench_fig12_one_vlog.cc.o"
  "CMakeFiles/bench_fig12_one_vlog.dir/bench_fig12_one_vlog.cc.o.d"
  "bench_fig12_one_vlog"
  "bench_fig12_one_vlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_one_vlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
