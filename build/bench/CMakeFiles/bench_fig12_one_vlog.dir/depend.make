# Empty dependencies file for bench_fig12_one_vlog.
# This may be replaced when dependencies are built.
