file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_profile.dir/bench_latency_profile.cc.o"
  "CMakeFiles/bench_latency_profile.dir/bench_latency_profile.cc.o.d"
  "bench_latency_profile"
  "bench_latency_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
