# Empty dependencies file for bench_latency_profile.
# This may be replaced when dependencies are built.
