# Empty dependencies file for bench_fig20_tp_32clients.
# This may be replaced when dependencies are built.
