file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_tp_32clients.dir/bench_fig20_tp_32clients.cc.o"
  "CMakeFiles/bench_fig20_tp_32clients.dir/bench_fig20_tp_32clients.cc.o.d"
  "bench_fig20_tp_32clients"
  "bench_fig20_tp_32clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_tp_32clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
