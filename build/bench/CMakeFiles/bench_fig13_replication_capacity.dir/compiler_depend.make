# Empty compiler generated dependencies file for bench_fig13_replication_capacity.
# This may be replaced when dependencies are built.
