file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_replication_capacity.dir/bench_fig13_replication_capacity.cc.o"
  "CMakeFiles/bench_fig13_replication_capacity.dir/bench_fig13_replication_capacity.cc.o.d"
  "bench_fig13_replication_capacity"
  "bench_fig13_replication_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_replication_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
