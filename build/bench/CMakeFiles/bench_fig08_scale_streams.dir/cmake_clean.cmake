file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_scale_streams.dir/bench_fig08_scale_streams.cc.o"
  "CMakeFiles/bench_fig08_scale_streams.dir/bench_fig08_scale_streams.cc.o.d"
  "bench_fig08_scale_streams"
  "bench_fig08_scale_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_scale_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
