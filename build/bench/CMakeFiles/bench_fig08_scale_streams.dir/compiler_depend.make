# Empty compiler generated dependencies file for bench_fig08_scale_streams.
# This may be replaced when dependencies are built.
