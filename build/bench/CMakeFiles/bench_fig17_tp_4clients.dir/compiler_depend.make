# Empty compiler generated dependencies file for bench_fig17_tp_4clients.
# This may be replaced when dependencies are built.
