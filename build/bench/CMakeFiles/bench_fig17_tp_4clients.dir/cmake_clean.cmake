file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tp_4clients.dir/bench_fig17_tp_4clients.cc.o"
  "CMakeFiles/bench_fig17_tp_4clients.dir/bench_fig17_tp_4clients.cc.o.d"
  "bench_fig17_tp_4clients"
  "bench_fig17_tp_4clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tp_4clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
