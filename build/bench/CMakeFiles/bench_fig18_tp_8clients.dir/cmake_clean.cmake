file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_tp_8clients.dir/bench_fig18_tp_8clients.cc.o"
  "CMakeFiles/bench_fig18_tp_8clients.dir/bench_fig18_tp_8clients.cc.o.d"
  "bench_fig18_tp_8clients"
  "bench_fig18_tp_8clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_tp_8clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
