# Empty dependencies file for bench_fig18_tp_8clients.
# This may be replaced when dependencies are built.
