# Empty compiler generated dependencies file for bench_fig11_high_throughput.
# This may be replaced when dependencies are built.
