# Empty compiler generated dependencies file for bench_fig19_tp_16clients.
# This may be replaced when dependencies are built.
