file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_tp_16clients.dir/bench_fig19_tp_16clients.cc.o"
  "CMakeFiles/bench_fig19_tp_16clients.dir/bench_fig19_tp_16clients.cc.o.d"
  "bench_fig19_tp_16clients"
  "bench_fig19_tp_16clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_tp_16clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
