file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_vary_vlogs_256.dir/bench_fig15_vary_vlogs_256.cc.o"
  "CMakeFiles/bench_fig15_vary_vlogs_256.dir/bench_fig15_vary_vlogs_256.cc.o.d"
  "bench_fig15_vary_vlogs_256"
  "bench_fig15_vary_vlogs_256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_vary_vlogs_256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
