# Empty dependencies file for bench_fig15_vary_vlogs_256.
# This may be replaced when dependencies are built.
