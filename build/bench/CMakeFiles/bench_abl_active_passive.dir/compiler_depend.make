# Empty compiler generated dependencies file for bench_abl_active_passive.
# This may be replaced when dependencies are built.
