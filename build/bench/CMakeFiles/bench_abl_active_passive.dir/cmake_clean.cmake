file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_active_passive.dir/bench_abl_active_passive.cc.o"
  "CMakeFiles/bench_abl_active_passive.dir/bench_abl_active_passive.cc.o.d"
  "bench_abl_active_passive"
  "bench_abl_active_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_active_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
