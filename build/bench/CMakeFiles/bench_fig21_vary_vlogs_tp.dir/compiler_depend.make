# Empty compiler generated dependencies file for bench_fig21_vary_vlogs_tp.
# This may be replaced when dependencies are built.
