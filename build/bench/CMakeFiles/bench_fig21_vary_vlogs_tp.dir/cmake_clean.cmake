file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_vary_vlogs_tp.dir/bench_fig21_vary_vlogs_tp.cc.o"
  "CMakeFiles/bench_fig21_vary_vlogs_tp.dir/bench_fig21_vary_vlogs_tp.cc.o.d"
  "bench_fig21_vary_vlogs_tp"
  "bench_fig21_vary_vlogs_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_vary_vlogs_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
