# Empty dependencies file for bench_abl_request_batching.
# This may be replaced when dependencies are built.
