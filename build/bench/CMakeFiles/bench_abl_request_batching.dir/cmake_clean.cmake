file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_request_batching.dir/bench_abl_request_batching.cc.o"
  "CMakeFiles/bench_abl_request_batching.dir/bench_abl_request_batching.cc.o.d"
  "bench_abl_request_batching"
  "bench_abl_request_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_request_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
