file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_chunk_aggregation.dir/bench_abl_chunk_aggregation.cc.o"
  "CMakeFiles/bench_abl_chunk_aggregation.dir/bench_abl_chunk_aggregation.cc.o.d"
  "bench_abl_chunk_aggregation"
  "bench_abl_chunk_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_chunk_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
