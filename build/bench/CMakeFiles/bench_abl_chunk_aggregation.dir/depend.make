# Empty dependencies file for bench_abl_chunk_aggregation.
# This may be replaced when dependencies are built.
