# Empty dependencies file for bench_fig14_vary_vlogs_128.
# This may be replaced when dependencies are built.
