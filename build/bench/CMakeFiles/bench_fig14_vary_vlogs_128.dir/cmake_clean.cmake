file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_vary_vlogs_128.dir/bench_fig14_vary_vlogs_128.cc.o"
  "CMakeFiles/bench_fig14_vary_vlogs_128.dir/bench_fig14_vary_vlogs_128.cc.o.d"
  "bench_fig14_vary_vlogs_128"
  "bench_fig14_vary_vlogs_128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_vary_vlogs_128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
