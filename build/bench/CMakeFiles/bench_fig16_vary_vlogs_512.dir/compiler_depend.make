# Empty compiler generated dependencies file for bench_fig16_vary_vlogs_512.
# This may be replaced when dependencies are built.
