file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_vary_vlogs_512.dir/bench_fig16_vary_vlogs_512.cc.o"
  "CMakeFiles/bench_fig16_vary_vlogs_512.dir/bench_fig16_vary_vlogs_512.cc.o.d"
  "bench_fig16_vary_vlogs_512"
  "bench_fig16_vary_vlogs_512.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_vary_vlogs_512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
