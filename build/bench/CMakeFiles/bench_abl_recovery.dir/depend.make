# Empty dependencies file for bench_abl_recovery.
# This may be replaced when dependencies are built.
