file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_recovery.dir/bench_abl_recovery.cc.o"
  "CMakeFiles/bench_abl_recovery.dir/bench_abl_recovery.cc.o.d"
  "bench_abl_recovery"
  "bench_abl_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
