file(REMOVE_RECURSE
  "libkera.a"
)
