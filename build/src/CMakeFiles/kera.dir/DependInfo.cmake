
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backup/backup.cc" "src/CMakeFiles/kera.dir/backup/backup.cc.o" "gcc" "src/CMakeFiles/kera.dir/backup/backup.cc.o.d"
  "/root/repo/src/broker/broker.cc" "src/CMakeFiles/kera.dir/broker/broker.cc.o" "gcc" "src/CMakeFiles/kera.dir/broker/broker.cc.o.d"
  "/root/repo/src/client/consumer.cc" "src/CMakeFiles/kera.dir/client/consumer.cc.o" "gcc" "src/CMakeFiles/kera.dir/client/consumer.cc.o.d"
  "/root/repo/src/client/producer.cc" "src/CMakeFiles/kera.dir/client/producer.cc.o" "gcc" "src/CMakeFiles/kera.dir/client/producer.cc.o.d"
  "/root/repo/src/cluster/mini_cluster.cc" "src/CMakeFiles/kera.dir/cluster/mini_cluster.cc.o" "gcc" "src/CMakeFiles/kera.dir/cluster/mini_cluster.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/kera.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/kera.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/kera.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/kera.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/kera.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/kera.dir/common/logging.cc.o.d"
  "/root/repo/src/coordinator/coordinator.cc" "src/CMakeFiles/kera.dir/coordinator/coordinator.cc.o" "gcc" "src/CMakeFiles/kera.dir/coordinator/coordinator.cc.o.d"
  "/root/repo/src/kafka/kafka_broker.cc" "src/CMakeFiles/kera.dir/kafka/kafka_broker.cc.o" "gcc" "src/CMakeFiles/kera.dir/kafka/kafka_broker.cc.o.d"
  "/root/repo/src/kafka/kafka_cluster.cc" "src/CMakeFiles/kera.dir/kafka/kafka_cluster.cc.o" "gcc" "src/CMakeFiles/kera.dir/kafka/kafka_cluster.cc.o.d"
  "/root/repo/src/kafka/partition_log.cc" "src/CMakeFiles/kera.dir/kafka/partition_log.cc.o" "gcc" "src/CMakeFiles/kera.dir/kafka/partition_log.cc.o.d"
  "/root/repo/src/rpc/messages.cc" "src/CMakeFiles/kera.dir/rpc/messages.cc.o" "gcc" "src/CMakeFiles/kera.dir/rpc/messages.cc.o.d"
  "/root/repo/src/rpc/serialize.cc" "src/CMakeFiles/kera.dir/rpc/serialize.cc.o" "gcc" "src/CMakeFiles/kera.dir/rpc/serialize.cc.o.d"
  "/root/repo/src/rpc/transport.cc" "src/CMakeFiles/kera.dir/rpc/transport.cc.o" "gcc" "src/CMakeFiles/kera.dir/rpc/transport.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/CMakeFiles/kera.dir/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/kera.dir/sim/event_sim.cc.o.d"
  "/root/repo/src/sim/figure_harness.cc" "src/CMakeFiles/kera.dir/sim/figure_harness.cc.o" "gcc" "src/CMakeFiles/kera.dir/sim/figure_harness.cc.o.d"
  "/root/repo/src/sim/sim_cluster.cc" "src/CMakeFiles/kera.dir/sim/sim_cluster.cc.o" "gcc" "src/CMakeFiles/kera.dir/sim/sim_cluster.cc.o.d"
  "/root/repo/src/storage/group.cc" "src/CMakeFiles/kera.dir/storage/group.cc.o" "gcc" "src/CMakeFiles/kera.dir/storage/group.cc.o.d"
  "/root/repo/src/storage/memory_manager.cc" "src/CMakeFiles/kera.dir/storage/memory_manager.cc.o" "gcc" "src/CMakeFiles/kera.dir/storage/memory_manager.cc.o.d"
  "/root/repo/src/storage/segment.cc" "src/CMakeFiles/kera.dir/storage/segment.cc.o" "gcc" "src/CMakeFiles/kera.dir/storage/segment.cc.o.d"
  "/root/repo/src/storage/stream.cc" "src/CMakeFiles/kera.dir/storage/stream.cc.o" "gcc" "src/CMakeFiles/kera.dir/storage/stream.cc.o.d"
  "/root/repo/src/storage/streamlet.cc" "src/CMakeFiles/kera.dir/storage/streamlet.cc.o" "gcc" "src/CMakeFiles/kera.dir/storage/streamlet.cc.o.d"
  "/root/repo/src/vlog/virtual_log.cc" "src/CMakeFiles/kera.dir/vlog/virtual_log.cc.o" "gcc" "src/CMakeFiles/kera.dir/vlog/virtual_log.cc.o.d"
  "/root/repo/src/vlog/virtual_segment.cc" "src/CMakeFiles/kera.dir/vlog/virtual_segment.cc.o" "gcc" "src/CMakeFiles/kera.dir/vlog/virtual_segment.cc.o.d"
  "/root/repo/src/wire/chunk.cc" "src/CMakeFiles/kera.dir/wire/chunk.cc.o" "gcc" "src/CMakeFiles/kera.dir/wire/chunk.cc.o.d"
  "/root/repo/src/wire/record.cc" "src/CMakeFiles/kera.dir/wire/record.cc.o" "gcc" "src/CMakeFiles/kera.dir/wire/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
