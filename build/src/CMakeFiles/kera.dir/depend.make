# Empty dependencies file for kera.
# This may be replaced when dependencies are built.
