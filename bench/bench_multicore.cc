// Shared-nothing multicore scaling: produce throughput into one broker
// over the socket transport, sweeping BrokerConfig::shards from 1 up to
// the host's CPU count. Each shard is an independent reactor (epoll loop
// + workers) and produce frames are routed to the shard owning their
// streamlet at decode time (rpc::RouteFrameToShard), so on a multicore
// host throughput should scale until the memory bus or NIC loopback
// saturates. On a single-CPU host the sweep degenerates to shards=1 plus
// an oversubscribed shards=2 point that cannot show speedup but still
// validates routing: the per-shard frame counters and cross_shard_ops
// are reported so the JSON shows how frames spread over the reactors.
//
//   ./bench_multicore --benchmark_out=BENCH_multicore.json
//                     --benchmark_out_format=json
//
// The host context (nproc, cpu_model) is stamped into the JSON via
// bench_host_context.h — scaling numbers are meaningless without it.
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "common/host_info.h"

namespace kera {
namespace {

constexpr size_t kRecordBytes = 1024;
constexpr size_t kTotalBytes = 24u << 20;  // per benchmark iteration

// One broker, socket transport, S shards. Streamlets spread over all
// shards (num_streamlets a multiple of S) so round-robin producers load
// every shard evenly.
void BM_MulticoreProduce(benchmark::State& state) {
  const uint32_t shards = uint32_t(state.range(0));
  const uint32_t producers =
      std::min<uint32_t>(8, std::max<uint32_t>(4, shards));
  const uint32_t streamlets = 2 * std::max<uint32_t>(shards, producers);
  const size_t records_per_producer =
      kTotalBytes / kRecordBytes / producers;

  double secs = 0;
  Broker::Stats stats;
  for (auto _ : state) {
    MiniClusterConfig cfg;
    cfg.nodes = 1;
    cfg.transport = MiniClusterTransport::kSocket;
    cfg.broker_shards = shards;
    cfg.vlogs_per_broker = std::max<uint32_t>(4, shards);
    auto cluster = std::make_unique<MiniCluster>(cfg);

    rpc::StreamOptions opts;
    opts.num_streamlets = streamlets;
    opts.replication_factor = 1;
    if (!cluster->coordinator().CreateStream("bench", opts).ok()) {
      state.SkipWithError("stream creation failed");
      return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (uint32_t p = 0; p < producers; ++p) {
      threads.emplace_back([&] {
        ProducerConfig pc;
        pc.stream = "bench";
        pc.chunk_size = 16 << 10;
        Producer producer(pc, cluster->network());
        if (!producer.Connect().ok()) {
          failed.store(true);
          return;
        }
        std::vector<std::byte> value(kRecordBytes, std::byte{0x6D});
        for (size_t i = 0; i < records_per_producer; ++i) {
          if (!producer.Send(value).ok()) {
            failed.store(true);
            return;
          }
        }
        if (!producer.Close().ok()) failed.store(true);
      });
    }
    for (auto& t : threads) t.join();
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
    stats = cluster->broker(1).GetStats();
    if (failed.load()) {
      state.SkipWithError("producer failed");
      return;
    }
  }

  const size_t total = producers * records_per_producer * kRecordBytes;
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(total));
  state.counters["produce_MBps"] = double(total) / secs / (1 << 20);
  state.counters["records_s"] =
      double(producers * records_per_producer) / secs;
  state.counters["producers"] = double(producers);
  state.counters["oversubscribed"] = shards > HostNproc() ? 1.0 : 0.0;
  // Routing evidence: shard<i>_frames shows the per-reactor spread of
  // handled frames (even when oversubscribed on 1 CPU). cross_shard_ops
  // counts chunks whose streamlet lives on a different shard than the
  // request's home shard — producers batch one chunk per streamlet into
  // each request, so multi-streamlet requests make this nonzero by
  // design; single-streamlet traffic (see broker_test) drives it to 0.
  state.counters["cross_shard_ops"] = double(stats.cross_shard_ops);
  state.counters["mailbox_enqueues"] =
      double(stats.shard_mailbox_enqueues);
  for (size_t i = 0; i < stats.shard_frames.size(); ++i) {
    state.counters["shard" + std::to_string(i) + "_frames"] =
        double(stats.shard_frames[i]);
  }
}
BENCHMARK(BM_MulticoreProduce)
    ->Apply([](benchmark::internal::Benchmark* b) {
      const unsigned nproc = HostNproc();
      std::vector<int64_t> shard_counts;
      for (unsigned s = 1; s <= nproc; s *= 2) {
        shard_counts.push_back(int64_t(s));
      }
      if (shard_counts.back() != int64_t(nproc)) {
        shard_counts.push_back(int64_t(nproc));
      }
      if (nproc == 1) {
        // Single-CPU fallback: still run an oversubscribed 2-shard point
        // so the routing counters get exercised end to end.
        shard_counts.push_back(2);
      }
      for (int64_t s : shard_counts) b->Arg(s);
      b->ArgNames({"shards"});
      b->Iterations(1);
      b->Unit(benchmark::kMillisecond);
      b->MeasureProcessCPUTime();
      b->UseRealTime();
    });

}  // namespace
}  // namespace kera
