// Latency profile: produce-request latency (p50/p99) across the paper's
// two configuration families and the chunk-size / replication knobs. The
// paper's §V.C/V.D frame every setting as a latency-throughput trade-off;
// this bench prints both sides for each point.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_LatencyVsChunkSize(benchmark::State& state) {
  SimExperimentConfig cfg = Fig17to20(/*clients=*/8,
                                      size_t(state.range(0)) << 10,
                                      /*replication=*/3);
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}
BENCHMARK(BM_LatencyVsChunkSize)
    ->ArgNames({"chunkKB"})
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_LatencyVsReplication(benchmark::State& state) {
  SimExperimentConfig cfg =
      LatencyBase(System::kKerA, 4, 4, 128, uint32_t(state.range(0)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}
BENCHMARK(BM_LatencyVsReplication)
    ->ArgNames({"R"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_LatencyVsRequestDepth(benchmark::State& state) {
  SimExperimentConfig cfg = LatencyBase(System::kKerA, 4, 4, 128, 3);
  cfg.request_max_chunks = uint32_t(state.range(0));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}
BENCHMARK(BM_LatencyVsRequestDepth)
    ->ArgNames({"chunks_per_request"})
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
