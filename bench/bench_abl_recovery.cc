// Ablation: crash-recovery replay time (wall clock, threaded MiniCluster,
// not the DES). Sweeps the amount of durably ingested data and the number
// of virtual logs; recovery replays the crashed broker's virtual segments
// from the surviving backups into new leaders. More vlogs scatter the
// data over more virtual segments and backups — the paper's parallel
// recovery argument (§III: "data can be read in parallel from many
// backups").
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <chrono>
#include <string>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

void BM_RecoveryReplay(benchmark::State& state) {
  const int chunks = int(state.range(0));
  const uint32_t vlogs = uint32_t(state.range(1));
  uint64_t replayed_total = 0;

  for (auto _ : state) {
    state.PauseTiming();
    MiniClusterConfig cfg;
    cfg.nodes = 4;
    cfg.workers_per_node = 0;  // deterministic
    cfg.segment_size = 128 << 10;
    cfg.virtual_segment_capacity = 128 << 10;
    cfg.vlogs_per_broker = vlogs;
    MiniCluster cluster(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = 8;
    opts.replication_factor = 3;
    auto info = cluster.coordinator().CreateStream("r", opts);
    if (!info.ok()) {
      state.SkipWithError("create stream failed");
      break;
    }
    std::string value(900, 'r');
    for (int i = 1; i <= chunks; ++i) {
      StreamletId sl = StreamletId(i % 8);
      ChunkBuilder b(1024);
      b.Start(info->stream, sl, 1);
      if (!b.AppendValue(AsBytes(value))) {
        state.SkipWithError("chunk build failed");
        break;
      }
      auto chunk = b.Seal(ChunkSeq(i));
      rpc::ProduceRequest req;
      req.producer = 1;
      req.stream = info->stream;
      req.chunks = {chunk};
      auto resp = cluster.broker(info->streamlet_brokers[sl])
                      .HandleProduce(req);
      if (resp.status != StatusCode::kOk) {
        state.SkipWithError("produce failed");
        break;
      }
    }
    NodeId victim = info->streamlet_brokers[0];
    cluster.CrashNode(victim);
    state.ResumeTiming();

    auto start = std::chrono::steady_clock::now();
    auto replayed = cluster.coordinator().RecoverNode(victim);
    auto elapsed = std::chrono::steady_clock::now() - start;
    state.PauseTiming();
    if (!replayed.ok()) {
      state.SkipWithError("recovery failed");
      break;
    }
    replayed_total += *replayed;
    state.counters["recovery_ms"] =
        double(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                   .count()) /
        1000.0;
    state.ResumeTiming();
  }
  state.counters["chunks_replayed"] =
      benchmark::Counter(double(replayed_total), benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_RecoveryReplay)
    ->ArgNames({"chunks", "vlogs"})
    ->ArgsProduct({{200, 1000, 4000}, {1, 4, 16}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera
