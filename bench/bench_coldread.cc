// Tiered broker memory benchmark: what a sealed-segment DRAM budget costs
// and buys.
//
//   - BM_ColdCatchUp: ingest ~4x the budget, then scan the full history
//     from offset 0. Reports catch-up throughput plus the tier counters
//     (resident vs ingested bytes, spill/evict/cold-read/readahead). The
//     budget=0 rows are the unbounded baseline: same scan, all hot.
//   - BM_HotTailLatency: steady-state produce latency percentiles with
//     and without a concurrent full-history cold scanner. The cold cache
//     is a separate bounded pool (scan resistance), so the scanner should
//     not move the hot path's p99 by much — the acceptance bar is ~10%.
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "broker/tiered_store.h"
#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// Scratch root for spill logs, one per process run.
std::string SpillTemplate(const char* tag) {
  std::string root = "/tmp/kera_bench_coldread_" + std::string(tag) + "_" +
                     std::to_string(getpid());
  std::filesystem::remove_all(root);
  return root + "/n%u";
}

struct BenchCluster {
  explicit BenchCluster(size_t budget, const char* tag) {
    MiniClusterConfig cfg;
    cfg.nodes = 3;
    cfg.workers_per_node = 0;
    cfg.transport = MiniClusterTransport::kDirect;
    cfg.segment_size = 16 << 10;
    cfg.segments_per_group = 2;
    cfg.virtual_segment_capacity = 256 << 10;
    cfg.broker_memory_budget_bytes = budget;
    if (budget > 0) cfg.broker_spill_dir = SpillTemplate(tag);
    cluster = std::make_unique<MiniCluster>(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.replication_factor = 2;
    auto info = cluster->coordinator().CreateStream("bench", opts);
    if (info.ok()) {
      this->info = *info;
      leader = this->info.streamlet_brokers[0];
      ok = true;
    }
  }

  bool Produce(ChunkSeq seq, const std::string& value) {
    ChunkBuilder b(4096);
    b.Start(info.stream, 0, 1);
    if (!b.AppendValue(AsBytes(value))) return false;
    auto chunk = b.Seal(seq);
    rpc::ProduceRequest req;
    req.producer = 1;
    req.stream = info.stream;
    req.chunks = {chunk};
    return cluster->broker(leader).HandleProduce(req).status ==
           StatusCode::kOk;
  }

  // Full catch-up scan of every group front to back; returns payload
  // bytes served (0 on a consume error).
  uint64_t ScanAll() {
    uint64_t bytes = 0;
    Broker& b = cluster->broker(leader);
    rpc::ConsumeRequest probe;
    probe.stream = info.stream;
    probe.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                      .max_chunks = 1}};
    auto presp = b.HandleConsume(probe);
    if (presp.status != StatusCode::kOk) return 0;
    const uint32_t groups = presp.entries[0].groups_created;
    for (GroupId g = 0; g < groups; ++g) {
      uint64_t cursor = 0;
      for (;;) {
        rpc::ConsumeRequest req;
        req.stream = info.stream;
        req.entries = {{.streamlet = 0, .group = g, .start_chunk = cursor,
                        .max_chunks = 16}};
        auto resp = b.HandleConsume(req);
        if (resp.status != StatusCode::kOk) return 0;
        const auto& e = resp.entries[0];
        if (e.chunks.empty()) break;
        for (const auto& frame : e.chunks) bytes += frame.size();
        cursor = e.next_chunk;
      }
    }
    return bytes;
  }

  std::unique_ptr<MiniCluster> cluster;
  rpc::StreamInfo info;
  NodeId leader = 0;
  bool ok = false;
};

std::string Payload(int i) {
  return "rec-" + std::to_string(i) + "-" +
         std::string(3800, char('a' + i % 26));
}

// Catch-up throughput and the resident-vs-ingested ledger. budget_kib=0
// is the unbounded baseline (everything hot, no spill tier at all).
void BM_ColdCatchUp(benchmark::State& state) {
  const int chunks = int(state.range(0));
  const size_t budget = size_t(state.range(1)) << 10;

  uint64_t scanned = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCluster bc(budget, "catchup");
    if (!bc.ok) {
      state.SkipWithError("cluster setup failed");
      break;
    }
    uint64_t ingested = 0;
    bool fed = true;
    for (int i = 0; i < chunks && fed; ++i) {
      std::string v = Payload(i);
      ingested += v.size();
      fed = bc.Produce(ChunkSeq(i + 1), v);
    }
    if (!fed) {
      state.SkipWithError("produce failed");
      break;
    }
    state.ResumeTiming();
    scanned = bc.ScanAll();
    state.PauseTiming();
    if (scanned == 0) {
      state.SkipWithError("scan failed");
      break;
    }
    auto s = bc.cluster->broker(bc.leader).GetStats();
    state.counters["ingested_bytes"] = double(ingested);
    state.counters["segments_spilled"] = double(s.segments_spilled);
    state.counters["segments_evicted"] = double(s.segments_evicted);
    state.counters["spill_bytes"] = double(s.spill_bytes);
    state.counters["cold_reads"] = double(s.cold_reads);
    state.counters["cold_cache_hits"] = double(s.cold_cache_hits);
    state.counters["cold_cache_misses"] = double(s.cold_cache_misses);
    state.counters["readahead_hits"] = double(s.readahead_hits);
    if (TieredStore* t = bc.cluster->broker(bc.leader).tiered()) {
      auto ts = t->GetStats();
      state.counters["resident_sealed_bytes"] =
          double(ts.resident_sealed_bytes);
      state.counters["resident_over_ingested"] =
          double(ts.resident_sealed_bytes) / double(ingested);
    }
    state.ResumeTiming();
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(scanned));
}

BENCHMARK(BM_ColdCatchUp)
    ->ArgNames({"chunks", "budget_kib"})
    // 256 x ~4 KiB chunks ~= 1 MiB ingested; 256 KiB is the ~25% point.
    ->ArgsProduct({{256, 1024}, {0, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Produce-side latency percentiles while a second thread either idles or
// loops full-history cold scans against the same broker.
void BM_HotTailLatency(benchmark::State& state) {
  const size_t budget = size_t(state.range(0)) << 10;
  const bool scan = state.range(1) != 0;
  constexpr int kWarm = 512;   // pre-load so the scanner has cold history
  constexpr int kProbe = 2000;

  using Clock = std::chrono::steady_clock;
  double p50 = 0;
  double p99 = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCluster bc(budget, "hottail");
    if (!bc.ok) {
      state.SkipWithError("cluster setup failed");
      break;
    }
    bool fed = true;
    for (int i = 0; i < kWarm && fed; ++i) {
      fed = bc.Produce(ChunkSeq(i + 1), Payload(i));
    }
    if (!fed) {
      state.SkipWithError("warmup produce failed");
      break;
    }
    std::atomic<bool> stop{false};
    std::thread scanner;
    if (scan) {
      scanner = std::thread([&] {
        while (!stop.load(std::memory_order_relaxed)) bc.ScanAll();
      });
    }
    std::vector<double> us;
    us.reserve(kProbe);
    state.ResumeTiming();
    for (int i = 0; i < kProbe && fed; ++i) {
      auto t0 = Clock::now();
      fed = bc.Produce(ChunkSeq(kWarm + i + 1), Payload(kWarm + i));
      us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
    }
    state.PauseTiming();
    stop.store(true, std::memory_order_relaxed);
    if (scanner.joinable()) scanner.join();
    if (!fed) {
      state.SkipWithError("probe produce failed");
      break;
    }
    std::sort(us.begin(), us.end());
    p50 = us[us.size() / 2];
    p99 = us[size_t(double(us.size()) * 0.99)];
    state.counters["produce_p50_us"] = p50;
    state.counters["produce_p99_us"] = p99;
    auto s = bc.cluster->broker(bc.leader).GetStats();
    state.counters["segments_evicted"] = double(s.segments_evicted);
    state.counters["cold_reads"] = double(s.cold_reads);
    state.ResumeTiming();
  }
}

BENCHMARK(BM_HotTailLatency)
    ->ArgNames({"budget_kib", "scan"})
    // Unbounded vs 256 KiB budget, idle vs concurrent cold scanner. The
    // comparison that matters: (256, 1) p99 vs (0, 0) p99.
    ->ArgsProduct({{0, 256}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera
