// Benchmarks for the log-structured backup store: group-commit flush
// throughput through the real Backup service at 1 MiB segments (counter
// fsyncs_per_mb is the headline — the group-commit flusher coalesces
// many segments into one fsync), an honest one-file-per-segment+fsync
// baseline (fsyncs_per_mb == 1 by construction), and cold-restart copy-map
// rebuild time as a function of segment count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "backup/backup.h"
#include "storage/segment_log.h"
#include "bench_host_context.h"
#include "common/crc32c.h"
#include "common/file.h"
#include "wire/chunk.h"

namespace {

namespace fs = std::filesystem;
using namespace kera;

constexpr size_t kSegmentBytes = 1u << 20;
constexpr int kSegmentsPerIter = 16;

std::string BenchDir(const std::string& name) {
  return "/tmp/kera_bench_backup/" + name;
}

/// One ~1 MiB chunk frame plus its running-checksum contribution.
struct SegmentPayload {
  std::vector<std::byte> frame;
  uint32_t checksum_after = 0;
};

SegmentPayload MakeSegmentPayload() {
  SegmentPayload p;
  std::vector<std::byte> value(kSegmentBytes - 256);
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = std::byte(uint8_t(i * 31));
  }
  ChunkBuilder b(kSegmentBytes + 4096);
  b.Start(/*stream=*/1, /*streamlet=*/0, /*producer=*/1);
  if (!b.AppendValue(value)) std::abort();
  auto bytes = b.Seal(/*seq=*/1);
  p.frame.assign(bytes.begin(), bytes.end());
  auto view = ChunkView::Parse(p.frame);
  uint32_t c = view->payload_checksum();
  p.checksum_after = Crc32c(&c, 4, 0);
  return p;
}

/// Group-commit path: 1 MiB sealed segments through Backup::HandleReplicate
/// into the segment log, one WaitForFlushes per batch of segments.
void BM_BackupGroupCommitFlush(benchmark::State& state) {
  const SegmentPayload payload = MakeSegmentPayload();
  std::string dir = BenchDir("group_commit");
  uint64_t total_segments = 0;
  uint64_t fsyncs = 0, flush_groups = 0, bytes_flushed = 0;
  // Throughput-oriented pacing: a wider group window lets the flusher
  // coalesce the whole burst (the 2 ms default optimizes durability lag;
  // these are the knobs a backup-heavy deployment would turn).
  BackupConfig cfg{.node = 2, .storage_dir = dir};
  cfg.log.flush_interval_us = 50'000;
  cfg.log.flush_batch_bytes = 32u << 20;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    Backup backup(cfg);
    state.ResumeTiming();

    for (int s = 0; s < kSegmentsPerIter; ++s) {
      rpc::ReplicateRequest req;
      req.primary = 1;
      req.vlog = 0;
      req.vseg = VirtualSegmentId(s);
      req.start_offset = 0;
      req.chunk_count = 1;
      req.checksum_after = payload.checksum_after;
      req.seals = true;
      req.payload = payload.frame;
      if (backup.HandleReplicate(req).status != StatusCode::kOk) std::abort();
    }
    backup.WaitForFlushes();

    state.PauseTiming();
    auto stats = backup.GetStats();
    fsyncs += stats.fsyncs;
    flush_groups += stats.flush_groups;
    bytes_flushed += stats.bytes_flushed;
    total_segments += kSegmentsPerIter;
    state.ResumeTiming();
  }
  fs::remove_all(dir);
  double mb = double(total_segments) * double(payload.frame.size()) /
              double(1u << 20);
  state.SetBytesProcessed(int64_t(total_segments * payload.frame.size()));
  state.counters["fsyncs_per_mb"] = double(fsyncs) / mb;
  state.counters["fsyncs"] = double(fsyncs);
  state.counters["flush_groups"] = double(flush_groups);
  state.counters["segments_per_group"] =
      flush_groups ? double(total_segments) / double(flush_groups) : 0.0;
  state.counters["bytes_flushed"] = double(bytes_flushed);
}
BENCHMARK(BM_BackupGroupCommitFlush)->Unit(benchmark::kMillisecond);

/// Baseline the group commit is measured against: the classic layout of
/// one file per flushed segment with its own fsync — O(segments) fsyncs.
void BM_BaselineFilePerSegment(benchmark::State& state) {
  const SegmentPayload payload = MakeSegmentPayload();
  std::string dir = BenchDir("file_per_segment");
  uint64_t total_segments = 0;
  uint64_t fsyncs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    fs::create_directories(dir);
    state.ResumeTiming();

    for (int s = 0; s < kSegmentsPerIter; ++s) {
      char name[64];
      std::snprintf(name, sizeof(name), "%s/seg-%04d", dir.c_str(), s);
      auto f = PosixFile::Open(name, O_RDWR | O_CREAT | O_TRUNC);
      if (!f.ok()) std::abort();
      if (!f->WriteAt(0, payload.frame).ok()) std::abort();
      if (!f->Sync().ok()) std::abort();
      ++fsyncs;
    }
    total_segments += kSegmentsPerIter;
  }
  fs::remove_all(dir);
  double mb = double(total_segments) * double(payload.frame.size()) /
              double(1u << 20);
  state.SetBytesProcessed(int64_t(total_segments * payload.frame.size()));
  state.counters["fsyncs_per_mb"] = double(fsyncs) / mb;
  state.counters["fsyncs"] = double(fsyncs);
}
BENCHMARK(BM_BaselineFilePerSegment)->Unit(benchmark::kMillisecond);

/// Cold-restart rebuild: scan time of a log directory holding N sealed
/// 64 KiB segment copies (the copy map comes from the log alone).
void BM_ColdRestartScan(benchmark::State& state) {
  const int segments = int(state.range(0));
  const size_t kLen = 64u << 10;
  std::string dir = BenchDir("restart_scan_" + std::to_string(segments));
  fs::remove_all(dir);
  {
    std::vector<std::byte> payload(kLen);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = std::byte(uint8_t(i));
    }
    SegmentLog log(dir, {});
    for (int s = 0; s < segments; ++s) {
      SegmentLog::CopyKey key{1, 0, VirtualSegmentId(s)};
      log.EnqueueOpen(key);
      log.EnqueueAppend(key, 0, payload, 1, uint32_t(s));
      log.EnqueueSeal(key, kLen, 1, uint32_t(s));
    }
    if (!log.Sync().ok()) std::abort();
  }
  uint64_t scan_ms = 0;
  for (auto _ : state) {
    SegmentLog log(dir, {});
    if (log.RecoveredCopies().size() != size_t(segments)) std::abort();
    scan_ms = log.GetStats().restart_scan_ms;
    benchmark::DoNotOptimize(scan_ms);
  }
  fs::remove_all(dir);
  state.counters["segments"] = double(segments);
  state.counters["restart_scan_ms"] = double(scan_ms);
  state.counters["log_mb"] =
      double(segments) * double(kLen) / double(1u << 20);
}
BENCHMARK(BM_ColdRestartScan)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
