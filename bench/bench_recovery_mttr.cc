// MTTR benchmark for the parallel crash-recovery engine: time from
// RecoverNode entry to full service (all lost streamlets re-led, all
// acked data replayed and re-replicated) as a function of data volume,
// broker count and recovery fan-out.
//
// Two modes:
//   - BM_MttrModeled / BM_Mttr512Segments run on the deterministic
//     DirectNetwork. The engine executes serially and MODELS the
//     parallel makespan from measured per-task costs (LPT assignment of
//     per-vlog replay lanes and per-backup read queues onto
//     `recovery_parallelism` workers). modeled_serial is the same model
//     at fan-out 1, so speedup = modeled_serial / modeled_mttr shares
//     one clock — parallelism=1 rows are the measured baseline
//     (speedup == 1.0 by construction there).
//   - BM_MttrSocket runs real TCP loopback with real recovery threads:
//     wall-clock MTTR plus the batched-read RPC reduction
//     (segments_read / read_rpcs) that scatter reads get from
//     kReadRecoverySegmentBatch.
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <string>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// Produces `chunks` 1KiB-ish chunks round-robin over the streamlets led
// by `victim` only (recovery cost depends on the victim's data, not the
// cluster's). Returns false on error.
bool LoadVictim(MiniCluster& cluster, const rpc::StreamInfo& info,
                NodeId victim, int chunks) {
  std::vector<StreamletId> owned;
  for (StreamletId sl = 0; sl < info.streamlet_brokers.size(); ++sl) {
    if (info.streamlet_brokers[sl] == victim) owned.push_back(sl);
  }
  if (owned.empty()) return false;
  std::string value(900, 'm');
  std::vector<int> seq(owned.size(), 0);
  for (int i = 0; i < chunks; ++i) {
    size_t k = size_t(i) % owned.size();
    ChunkBuilder b(1024);
    b.Start(info.stream, owned[k], 1);
    if (!b.AppendValue(AsBytes(value))) return false;
    auto chunk = b.Seal(ChunkSeq(++seq[k]));
    rpc::ProduceRequest req;
    req.producer = 1;
    req.stream = info.stream;
    req.chunks = {chunk};
    if (cluster.broker(victim).HandleProduce(req).status !=
        StatusCode::kOk) {
      return false;
    }
  }
  return true;
}

void ReportRecovery(benchmark::State& state, const MiniCluster& cluster,
                    const Coordinator::RecoveryStats& rs) {
  state.counters["mttr_ms"] = double(rs.last_mttr_us) / 1000.0;
  state.counters["modeled_mttr_ms"] = double(rs.modeled_mttr_us) / 1000.0;
  state.counters["modeled_serial_ms"] =
      double(rs.modeled_serial_us) / 1000.0;
  if (rs.modeled_mttr_us > 0 && rs.modeled_serial_us > 0) {
    state.counters["speedup"] =
        double(rs.modeled_serial_us) / double(rs.modeled_mttr_us);
  }
  state.counters["tasks"] = double(rs.tasks_issued);
  state.counters["read_rpcs"] = double(rs.read_rpcs);
  if (rs.read_rpcs > 0) {
    state.counters["rpc_reduction"] =
        double(rs.tasks_issued) / double(rs.read_rpcs);
  }
  state.counters["peak_fanout"] = double(rs.peak_fanout);
  state.counters["bytes_replayed"] = double(rs.bytes_replayed);
  state.counters["task_p50_us"] = double(rs.task_replay_us.Quantile(0.5));
  state.counters["task_p99_us"] = double(rs.task_replay_us.Quantile(0.99));
  (void)cluster;
}

// MTTR vs data volume x broker count x fan-out (Direct path, modeled).
void BM_MttrModeled(benchmark::State& state) {
  const int chunks = int(state.range(0));
  const uint32_t nodes = uint32_t(state.range(1));
  const uint32_t parallelism = uint32_t(state.range(2));

  for (auto _ : state) {
    state.PauseTiming();
    MiniClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.workers_per_node = 0;  // DirectNetwork, serial + modeled
    cfg.segment_size = 64 << 10;
    cfg.virtual_segment_capacity = 32 << 10;
    cfg.vlogs_per_broker = 8;
    cfg.recovery_parallelism = parallelism;
    cfg.recovery_read_batch = 8;
    MiniCluster cluster(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = nodes * 2;
    opts.replication_factor = 3;
    auto info = cluster.coordinator().CreateStream("m", opts);
    if (!info.ok()) {
      state.SkipWithError("create stream failed");
      break;
    }
    NodeId victim = info->streamlet_brokers[0];
    if (!LoadVictim(cluster, *info, victim, chunks)) {
      state.SkipWithError("load failed");
      break;
    }
    cluster.CrashNode(victim);
    state.ResumeTiming();
    auto replayed = cluster.coordinator().RecoverNode(victim);
    state.PauseTiming();
    if (!replayed.ok()) {
      state.SkipWithError("recovery failed");
      break;
    }
    ReportRecovery(state, cluster, cluster.coordinator().GetRecoveryStats());
    state.ResumeTiming();
  }
}

BENCHMARK(BM_MttrModeled)
    ->ArgNames({"chunks", "nodes", "par"})
    ->ArgsProduct({{1000, 4000}, {4, 8}, {1, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The paper-scale point: a victim whose data spans ~512 virtual
// segments (16 vlogs x ~32 segments each), swept over the recovery
// fan-out. The acceptance bar is modeled speedup >= 2x at par=8 vs the
// par=1 baseline.
void BM_Mttr512Segments(benchmark::State& state) {
  const uint32_t parallelism = uint32_t(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    MiniClusterConfig cfg;
    cfg.nodes = 5;
    cfg.workers_per_node = 0;
    cfg.segment_size = 32 << 10;
    cfg.virtual_segment_capacity = 8 << 10;  // ~8 chunks per vseg
    cfg.vlogs_per_broker = 16;
    cfg.recovery_parallelism = parallelism;
    cfg.recovery_read_batch = 8;
    MiniCluster cluster(cfg);
    rpc::StreamOptions opts;
    // 40 streamlets -> the victim leads 8, hashing over most of its 16
    // shared-pool vlogs: recovery forms many independent lanes.
    opts.num_streamlets = 40;
    opts.replication_factor = 3;
    auto info = cluster.coordinator().CreateStream("m", opts);
    if (!info.ok()) {
      state.SkipWithError("create stream failed");
      break;
    }
    NodeId victim = info->streamlet_brokers[0];
    if (!LoadVictim(cluster, *info, victim, 4096)) {
      state.SkipWithError("load failed");
      break;
    }
    cluster.CrashNode(victim);
    state.ResumeTiming();
    auto replayed = cluster.coordinator().RecoverNode(victim);
    state.PauseTiming();
    if (!replayed.ok()) {
      state.SkipWithError("recovery failed");
      break;
    }
    ReportRecovery(state, cluster, cluster.coordinator().GetRecoveryStats());
    state.ResumeTiming();
  }
}

BENCHMARK(BM_Mttr512Segments)
    ->ArgNames({"par"})
    ->ArgsProduct({{1, 2, 4, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Real transport: TCP loopback, real recovery threads. Wall-clock MTTR
// is honest but noisy (scheduler-dependent); the deterministic claim
// here is the batched-read RPC reduction (tasks / read_rpcs).
void BM_MttrSocket(benchmark::State& state) {
  const uint32_t parallelism = uint32_t(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    MiniClusterConfig cfg;
    cfg.nodes = 4;
    cfg.workers_per_node = 2;
    cfg.transport = MiniClusterTransport::kSocket;
    cfg.segment_size = 32 << 10;
    cfg.virtual_segment_capacity = 16 << 10;
    cfg.vlogs_per_broker = 8;
    cfg.recovery_parallelism = parallelism;
    cfg.recovery_read_batch = 8;
    MiniCluster cluster(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = 16;  // victim leads 4 -> several replay lanes
    opts.replication_factor = 3;
    auto info = cluster.coordinator().CreateStream("m", opts);
    if (!info.ok()) {
      state.SkipWithError("create stream failed");
      break;
    }
    NodeId victim = info->streamlet_brokers[0];
    if (!LoadVictim(cluster, *info, victim, 1500)) {
      state.SkipWithError("load failed");
      break;
    }
    cluster.CrashNode(victim);
    state.ResumeTiming();
    auto replayed = cluster.coordinator().RecoverNode(victim);
    state.PauseTiming();
    if (!replayed.ok()) {
      state.SkipWithError("recovery failed");
      break;
    }
    ReportRecovery(state, cluster, cluster.coordinator().GetRecoveryStats());
    state.ResumeTiming();
  }
}

BENCHMARK(BM_MttrSocket)
    ->ArgNames({"par"})
    ->ArgsProduct({{1, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera
