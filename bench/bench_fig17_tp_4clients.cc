// Figure 17: throughput configuration with one virtual log per
// sub-partition (32 shared virtual logs per broker). 4 producers running
// in parallel with 4 consumers on 4 brokers; one stream with 32
// streamlets, 4 active sub-partitions each; chunk size 4-64 KB, R 1/2/3.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig17(benchmark::State& state) {
  SimExperimentConfig cfg = Fig17to20(/*clients=*/4,
                                      size_t(state.range(0)) << 10,
                                      uint32_t(state.range(1)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig17)
    ->ArgNames({"chunkKB", "R"})
    ->ArgsProduct({{4, 8, 16, 32, 64}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
