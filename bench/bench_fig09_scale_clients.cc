// Figure 9: scaling the number of clients. Kafka vs KerA with increasing
// replication factor; concurrent producers with 16 KB chunks; 128 streams
// (one partition each) on 4 brokers. KerA is configured like Kafka: one
// replicated log per partition — the difference left is active push vs
// passive pull replication.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig09(benchmark::State& state) {
  SimExperimentConfig cfg = Fig9(SystemArg(state.range(0)),
                                 uint32_t(state.range(1)),
                                 uint32_t(state.range(2)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig09)
    ->ArgNames({"sys", "producers", "R"})
    ->ArgsProduct({{0, 1}, {4, 8, 16}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
