// Consumer fetch-engine benchmarks: end-to-end consume throughput and
// Poll latency against a real MiniCluster, varying the fetch pipeline
// depth (1 = the serial pre-pipelining engine) and the broker count, on
// both the Direct (inline) and Socket (loopback TCP) transports; plus
// the idle-stream RPC rate with and without broker long-poll.
//
//   ./bench_consume --benchmark_out=BENCH_consume.json \
//                   --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <array>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "common/histogram.h"

namespace kera {
namespace {

constexpr size_t kRecordBytes = 1024;
constexpr size_t kBytesPerBroker = 4u << 20;

std::unique_ptr<MiniCluster> MakeCluster(bool socket, uint32_t brokers) {
  MiniClusterConfig cfg;
  cfg.nodes = brokers;
  cfg.transport = socket ? MiniClusterTransport::kSocket
                         : MiniClusterTransport::kDirect;
  cfg.workers_per_node = socket ? 4 : 0;
  return std::make_unique<MiniCluster>(cfg);
}

/// Creates a sealed stream with one streamlet per broker holding
/// kBytesPerBroker of 1 KB records, ready to be consumed.
rpc::StreamInfo FillStream(MiniCluster& cluster, uint32_t brokers) {
  rpc::StreamOptions opts;
  opts.num_streamlets = brokers;
  opts.replication_factor = 1;
  auto info = cluster.coordinator().CreateStream("bench", opts);
  if (!info.ok()) std::abort();
  ProducerConfig pc;
  pc.stream = "bench";
  pc.chunk_size = 16 << 10;
  Producer producer(pc, cluster.network());
  if (!producer.Connect().ok()) std::abort();
  std::vector<std::byte> value(kRecordBytes, std::byte{0x6B});
  const size_t records = brokers * kBytesPerBroker / kRecordBytes;
  for (size_t i = 0; i < records; ++i) {
    if (!producer.Send(value).ok()) std::abort();
  }
  if (!producer.Close().ok()) std::abort();
  if (!cluster.coordinator().SealStream("bench").ok()) std::abort();
  return *info;
}

// Drains the whole sealed stream, timing each Poll call. Reported:
// consume throughput (bytes/s), poll-latency quantiles, and the consume
// RPC/empty-response counts.
void BM_ConsumeThroughput(benchmark::State& state) {
  const bool socket = state.range(0) != 0;
  const uint32_t brokers = uint32_t(state.range(1));
  const uint32_t depth = uint32_t(state.range(2));
  const uint64_t expect_records = brokers * kBytesPerBroker / kRecordBytes;

  Histogram poll_us;
  uint64_t requests = 0, empties = 0, records = 0;
  double secs = 0;
  for (auto _ : state) {
    auto cluster = MakeCluster(socket, brokers);
    FillStream(*cluster, brokers);
    ConsumerConfig cc;
    cc.stream = "bench";
    cc.fetch_pipeline_depth = depth;
    // Bounded fetches (a prefetch window of many small requests) instead
    // of one giant transfer per broker: this is the shape the pipeline
    // exists for, and what gives the depth knob something to overlap.
    cc.max_bytes_per_request = 64 << 10;
    cc.max_chunks_per_entry = 4;
    Consumer consumer(cc, cluster->network());
    if (!consumer.Connect().ok()) {
      state.SkipWithError("consumer connect failed");
      return;
    }
    records = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      const auto p0 = std::chrono::steady_clock::now();
      auto recs = consumer.PollBlocking(1024);
      poll_us.Record(uint64_t(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - p0)
              .count()));
      records += recs.size();
      if (recs.empty() && consumer.Finished()) break;
    }
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
    auto stats = consumer.GetStats();
    requests = stats.requests_sent;
    empties = stats.empty_responses;
    consumer.Close();
    if (records != expect_records) {
      state.SkipWithError("record count mismatch");
      return;
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(brokers * kBytesPerBroker));
  state.counters["consume_MBps"] =
      double(brokers * kBytesPerBroker) / secs / (1 << 20);
  state.counters["poll_p50_us"] = double(poll_us.Quantile(0.5));
  state.counters["poll_p99_us"] = double(poll_us.Quantile(0.99));
  state.counters["consume_rpcs"] = double(requests);
  state.counters["empty_responses"] = double(empties);
  state.counters["records"] = double(records);
}
BENCHMARK(BM_ConsumeThroughput)
    ->ArgsProduct({{0, 1}, {1, 2, 4}, {1, 2, 4, 8}})
    ->ArgNames({"socket", "brokers", "depth"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Tailing a live stream across 4 brokers: a producer emits one
// timestamped record every 2 ms round-robin over the streamlets while
// the consumer tails. Reported: end-to-end delivery latency quantiles
// (produce -> Poll) and the RPC counts. This is where the engine shape
// shows: the serial engine with long-poll head-of-line blocks — an idle
// broker parks the single fetch thread while another broker has data —
// whereas per-broker workers park each long-poll on its own broker.
// wait_us=0 on depth 1 is the pre-pipelining baseline (idle-backoff
// polling: decent latency, an RPC flood).
void BM_TailLatency(benchmark::State& state) {
  const bool socket = state.range(0) != 0;
  const uint32_t depth = uint32_t(state.range(1));
  const uint64_t wait_us = uint64_t(state.range(2));
  constexpr uint32_t kBrokers = 4;
  constexpr int kTailRecords = 250;

  Histogram lat_us;
  uint64_t requests = 0, empties = 0;
  for (auto _ : state) {
    auto cluster = MakeCluster(socket, kBrokers);
    rpc::StreamOptions opts;
    opts.num_streamlets = kBrokers;
    opts.replication_factor = 1;
    if (!cluster->coordinator().CreateStream("bench", opts).ok()) {
      std::abort();
    }
    ConsumerConfig cc;
    cc.stream = "bench";
    cc.fetch_pipeline_depth = depth;
    cc.fetch_max_wait_us = wait_us;
    Consumer consumer(cc, cluster->network());
    if (!consumer.Connect().ok()) {
      state.SkipWithError("consumer connect failed");
      return;
    }
    ProducerConfig pc;
    pc.stream = "bench";
    pc.chunk_size = 4 << 10;
    Producer producer(pc, cluster->network());
    if (!producer.Connect().ok()) std::abort();

    std::thread feeder([&] {
      for (int i = 0; i < kTailRecords; ++i) {
        std::array<std::byte, 64> value{};
        const int64_t now_ns =
            std::chrono::steady_clock::now().time_since_epoch().count();
        std::memcpy(value.data(), &now_ns, sizeof(now_ns));
        if (!producer.Send(value).ok()) std::abort();
        if (!producer.Flush().ok()) std::abort();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    int received = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (received < kTailRecords &&
           std::chrono::steady_clock::now() < deadline) {
      for (const auto& rec : consumer.PollBlocking(64)) {
        int64_t sent_ns = 0;
        std::memcpy(&sent_ns, rec.value.data(), sizeof(sent_ns));
        const int64_t now_ns =
            std::chrono::steady_clock::now().time_since_epoch().count();
        lat_us.Record(uint64_t(std::max<int64_t>(now_ns - sent_ns, 0)) /
                      1000);
        ++received;
      }
    }
    feeder.join();
    if (!producer.Close().ok()) std::abort();
    auto stats = consumer.GetStats();
    requests = stats.requests_sent;
    empties = stats.empty_responses;
    consumer.Close();
    if (received != kTailRecords) {
      state.SkipWithError("tail records lost");
      return;
    }
  }
  state.counters["lat_p50_us"] = double(lat_us.Quantile(0.5));
  state.counters["lat_p99_us"] = double(lat_us.Quantile(0.99));
  state.counters["lat_max_us"] = double(lat_us.max());
  state.counters["consume_rpcs"] = double(requests);
  state.counters["empty_responses"] = double(empties);
}
BENCHMARK(BM_TailLatency)
    ->ArgsProduct({{0, 1}, {1, 4}, {0, 50'000}})
    ->ArgNames({"socket", "depth", "wait_us"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// An idle consumer for 300 ms: with long-poll the fetch parks at the
// broker (a handful of RPCs); without it the client spins empty rounds.
void BM_IdleStreamRpcs(benchmark::State& state) {
  const uint64_t wait_us = uint64_t(state.range(0));
  uint64_t requests = 0, empties = 0, parked = 0;
  for (auto _ : state) {
    auto cluster = MakeCluster(/*socket=*/false, /*brokers=*/1);
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.replication_factor = 1;
    if (!cluster->coordinator().CreateStream("bench", opts).ok()) {
      std::abort();
    }
    ConsumerConfig cc;
    cc.stream = "bench";
    cc.fetch_max_wait_us = wait_us;
    Consumer consumer(cc, cluster->network());
    if (!consumer.Connect().ok()) {
      state.SkipWithError("consumer connect failed");
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    auto stats = consumer.GetStats();
    requests = stats.requests_sent;
    empties = stats.empty_responses;
    parked = cluster->TotalBrokerStats().consume_long_polls;
    consumer.Close();
  }
  state.counters["consume_rpcs"] = double(requests);
  state.counters["empty_responses"] = double(empties);
  state.counters["long_polls"] = double(parked);
}
BENCHMARK(BM_IdleStreamRpcs)
    ->Arg(0)
    ->Arg(100'000)
    ->ArgNames({"wait_us"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera
