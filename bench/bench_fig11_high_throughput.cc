// Figure 11: high-throughput configuration. Kafka vs KerA while varying
// the number of producers and the chunk size; replication factor 3 over
// 4 brokers. Kafka: one stream with 32 partitions; KerA: one stream with
// 32 streamlets, 4 active sub-partitions each, one virtual log per
// sub-partition.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig11(benchmark::State& state) {
  SimExperimentConfig cfg = Fig11(SystemArg(state.range(0)),
                                  uint32_t(state.range(1)),
                                  size_t(state.range(2)) << 10);
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig11)
    ->ArgNames({"sys", "producers", "chunkKB"})
    ->ArgsProduct({{0, 1}, {4, 8, 16, 32}, {4, 16, 64}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
