// Shared helpers for the figure benches: every benchmark runs one full
// simulated experiment per iteration and reports the paper's metric
// (cluster throughput in million records/s) plus replication statistics
// as benchmark counters.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_host_context.h"
#include "sim/figure_harness.h"

namespace kera::sim {

inline void ReportResult(benchmark::State& state,
                         const SimExperimentResult& r) {
  state.counters["ingest_Mrec_s"] = r.ingest_mrecords_per_s;
  state.counters["consume_Mrec_s"] = r.consume_mrecords_per_s;
  state.counters["repl_rpcs"] = double(r.replication_rpcs);
  state.counters["avg_repl_KB"] = r.avg_replication_kb;
  state.counters["p50_us"] = r.produce_latency_p50_us;
  state.counters["p99_us"] = r.produce_latency_p99_us;
  if (r.e2e_latency_p50_us > 0) {
    state.counters["e2e_p50_us"] = r.e2e_latency_p50_us;
    state.counters["e2e_p99_us"] = r.e2e_latency_p99_us;
  }
  state.counters["dispatch_util"] = r.dispatch_utilization;
}

inline System SystemArg(int64_t v) {
  return v == 0 ? System::kKerA : System::kKafka;
}

}  // namespace kera::sim
