// Ablation: active (KerA push) vs passive (Kafka pull) replication with
// the SAME partitioning (one replication stream per partition, 128
// streams) and the same chunk size, sweeping the replication factor.
// Isolates the synchronization architecture from the partitioning model.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_AblActivePassive(benchmark::State& state) {
  System system = SystemArg(state.range(0));
  uint32_t replication = uint32_t(state.range(1));
  SimExperimentConfig cfg = Fig9(system, /*producers=*/8, replication);
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_AblActivePassive)
    ->ArgNames({"sys", "R"})
    ->ArgsProduct({{0, 1}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
