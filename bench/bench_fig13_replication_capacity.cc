// Figure 13: increasing the replication capacity (1, 2 and 4 shared
// replicated virtual logs per broker) while scaling the number of
// streams. Replication factor 3, 8 concurrent producers and consumers,
// 4 brokers, chunk size 1 KB.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig13(benchmark::State& state) {
  SimExperimentConfig cfg =
      Fig13(uint32_t(state.range(0)), uint32_t(state.range(1)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig13)
    ->ArgNames({"streams", "vlogs"})
    ->ArgsProduct({{128, 256, 512}, {1, 2, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
