// Figure 18: throughput configuration, 8 producers + 8 consumers, one
// virtual log per sub-partition (32 per broker), chunk 4-64 KB, R 1/2/3.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig18(benchmark::State& state) {
  SimExperimentConfig cfg = Fig17to20(/*clients=*/8,
                                      size_t(state.range(0)) << 10,
                                      uint32_t(state.range(1)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig18)
    ->ArgNames({"chunkKB", "R"})
    ->ArgsProduct({{4, 8, 16, 32, 64}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
