// Figure 16: ingestion of 512 streams varying the number of virtual logs
// per broker. 8 concurrent producers and consumers, 4 brokers, chunk size
// 1 KB, replication factor 1/2/3.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig16(benchmark::State& state) {
  SimExperimentConfig cfg = Fig14to16(/*streams=*/512,
                                      uint32_t(state.range(0)),
                                      uint32_t(state.range(1)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig16)
    ->ArgNames({"vlogs", "R"})
    ->ArgsProduct({{1, 2, 4, 8, 16, 32, 64, 128}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
