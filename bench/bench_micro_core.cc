// Microbenchmarks of the core data structures on the hot paths: CRC32C,
// record/chunk building and parsing, segment and group appends, virtual
// log reference appends and batch polling. These are wall-clock
// measurements of the real code (not the DES).
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "common/crc32c.h"
#include "storage/group.h"
#include "storage/memory_manager.h"
#include "storage/segment.h"
#include "vlog/virtual_log.h"
#include "wire/chunk.h"
#include "wire/record.h"

namespace kera {
namespace {

std::vector<std::byte> MakeChunkFrame(size_t chunk_size, size_t record_size) {
  ChunkBuilder b(chunk_size);
  b.Start(1, 0, 1);
  std::vector<std::byte> value(record_size, std::byte{0x42});
  while (b.AppendValue(value)) {
  }
  auto bytes = b.Seal(1);
  return {bytes.begin(), bytes.end()};
}

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::byte> data(size_t(state.range(0)), std::byte{0xA5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1024)->Arg(65536);

void BM_RecordWrite(benchmark::State& state) {
  std::vector<std::byte> buf(4096);
  std::vector<std::byte> value(size_t(state.range(0)), std::byte{0x42});
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteRecord(buf, value));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_RecordWrite)->Arg(100)->Arg(1024);

void BM_RecordParseAndVerify(benchmark::State& state) {
  std::vector<std::byte> buf(4096);
  std::vector<std::byte> value(100, std::byte{0x42});
  size_t n = WriteRecord(buf, value);
  auto span = std::span(buf).first(n);
  for (auto _ : state) {
    auto view = RecordView::Parse(span);
    benchmark::DoNotOptimize(view->VerifyChecksum());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_RecordParseAndVerify);

void BM_ChunkBuildSeal(benchmark::State& state) {
  size_t chunk_size = size_t(state.range(0));
  ChunkBuilder builder(chunk_size);
  std::vector<std::byte> value(100, std::byte{0x42});
  uint64_t records = 0;
  for (auto _ : state) {
    builder.Start(1, 0, 1);
    while (builder.AppendValue(value)) ++records;
    benchmark::DoNotOptimize(builder.Seal(1));
  }
  state.SetItemsProcessed(int64_t(records));
}
BENCHMARK(BM_ChunkBuildSeal)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_ChunkIterateRecords(benchmark::State& state) {
  auto frame = MakeChunkFrame(size_t(state.range(0)), 100);
  auto view = ChunkView::Parse(frame);
  uint64_t records = 0;
  for (auto _ : state) {
    for (auto it = view->records(); !it.Done(); it.Next()) {
      benchmark::DoNotOptimize(it.record().value());
      ++records;
    }
  }
  state.SetItemsProcessed(int64_t(records));
}
BENCHMARK(BM_ChunkIterateRecords)->Arg(1024)->Arg(65536);

void BM_SegmentAppend(benchmark::State& state) {
  auto frame = MakeChunkFrame(size_t(state.range(0)), 100);
  auto segment = std::make_unique<Segment>(Buffer(8u << 20), 1, 0, 0, 0);
  for (auto _ : state) {
    auto r = segment->AppendChunk(frame);
    if (!r.ok()) {
      state.PauseTiming();
      segment = std::make_unique<Segment>(Buffer(8u << 20), 1, 0, 0, 0);
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(frame.size()));
}
BENCHMARK(BM_SegmentAppend)->Arg(1024)->Arg(65536);

void BM_GroupAppend(benchmark::State& state) {
  auto frame = MakeChunkFrame(1024, 100);
  MemoryManager mm(size_t(2) << 30, 1u << 20);
  auto group = std::make_unique<Group>(mm, 1, 0, 0, 1024);
  for (auto _ : state) {
    auto r = group->AppendChunk(frame);
    if (!r.ok()) {
      state.PauseTiming();
      group->Close();
      for (uint64_t i = 0; i < group->chunk_count(); ++i) {
        group->MarkChunkDurable(i);
      }
      (void)group->Trim();
      group = std::make_unique<Group>(mm, 1, 0, 0, 1024);
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(frame.size()));
}
BENCHMARK(BM_GroupAppend);

void BM_VlogAppendPollComplete(benchmark::State& state) {
  auto frame = MakeChunkFrame(1024, 100);
  MemoryManager mm(size_t(2) << 30, 1u << 20);
  Group group(mm, 1, 0, 0, 4096);
  VirtualLogConfig vc;
  vc.replication_factor = 3;
  VirtualLog vlog(0, vc, [](VirtualSegmentId) {
    return std::vector<NodeId>{2, 3};
  });
  auto chunk_view = ChunkView::Parse(frame);
  for (auto _ : state) {
    auto appended = group.AppendChunk(frame);
    if (!appended.ok()) {
      state.SkipWithError("group full");
      break;
    }
    ChunkRef ref;
    ref.loc = *appended;
    ref.group = &group;
    ref.stream = 1;
    ref.payload_checksum = chunk_view->payload_checksum();
    vlog.Append(ref);
    auto batch = vlog.Poll();
    vlog.Complete(*batch);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_VlogAppendPollComplete)->Iterations(300000);

}  // namespace
}  // namespace kera
