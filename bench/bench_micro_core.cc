// Microbenchmarks of the core data structures on the hot paths: CRC32C,
// record/chunk building and parsing, segment and group appends, virtual
// log reference appends and batch polling. These are wall-clock
// measurements of the real code (not the DES).
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <string_view>
#include <vector>

#include "common/crc32c.h"
#include "rpc/messages.h"
#include "rpc/serialize.h"
#include "storage/group.h"
#include "storage/memory_manager.h"
#include "storage/segment.h"
#include "vlog/virtual_log.h"
#include "wire/chunk.h"
#include "wire/record.h"

namespace kera {
namespace {

std::vector<std::byte> MakeChunkFrame(size_t chunk_size, size_t record_size) {
  ChunkBuilder b(chunk_size);
  b.Start(1, 0, 1);
  std::vector<std::byte> value(record_size, std::byte{0x42});
  while (b.AppendValue(value)) {
  }
  auto bytes = b.Seal(1);
  return {bytes.begin(), bytes.end()};
}

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::byte> data(size_t(state.range(0)), std::byte{0xA5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1024)->Arg(65536);

// Table-driven baseline, for comparison against the dispatched (hardware
// when available) BM_Crc32c above.
void BM_Crc32cSoftware(benchmark::State& state) {
  std::vector<std::byte> data(size_t(state.range(0)), std::byte{0xA5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32cSoftware(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32cSoftware)->Arg(64)->Arg(1024)->Arg(65536);

// Combining two already-computed CRCs (the seal path: chunk checksum from
// per-record CRCs) vs. the length of the shifted suffix. O(1) work either
// way; the arg only selects the cached shift operator.
void BM_Crc32cCombine(benchmark::State& state) {
  std::vector<std::byte> a(123, std::byte{0x17});
  std::vector<std::byte> b(size_t(state.range(0)), std::byte{0x71});
  uint32_t ca = Crc32c(a);
  uint32_t cb = Crc32c(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32cCombine(ca, cb, b.size()));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_Crc32cCombine)->Arg(104)->Arg(4096);

void BM_RecordWrite(benchmark::State& state) {
  std::vector<std::byte> buf(4096);
  std::vector<std::byte> value(size_t(state.range(0)), std::byte{0x42});
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteRecord(buf, value));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_RecordWrite)->Arg(100)->Arg(1024);

void BM_RecordParseAndVerify(benchmark::State& state) {
  std::vector<std::byte> buf(4096);
  std::vector<std::byte> value(100, std::byte{0x42});
  size_t n = WriteRecord(buf, value);
  auto span = std::span(buf).first(n);
  for (auto _ : state) {
    auto view = RecordView::Parse(span);
    benchmark::DoNotOptimize(view->VerifyChecksum());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_RecordParseAndVerify);

void BM_ChunkBuildSeal(benchmark::State& state) {
  size_t chunk_size = size_t(state.range(0));
  ChunkBuilder builder(chunk_size);
  std::vector<std::byte> value(100, std::byte{0x42});
  uint64_t records = 0;
  for (auto _ : state) {
    builder.Start(1, 0, 1);
    while (builder.AppendValue(value)) ++records;
    benchmark::DoNotOptimize(builder.Seal(1));
  }
  state.SetItemsProcessed(int64_t(records));
}
BENCHMARK(BM_ChunkBuildSeal)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_ChunkIterateRecords(benchmark::State& state) {
  auto frame = MakeChunkFrame(size_t(state.range(0)), 100);
  auto view = ChunkView::Parse(frame);
  uint64_t records = 0;
  for (auto _ : state) {
    for (auto it = view->records(); !it.Done(); it.Next()) {
      benchmark::DoNotOptimize(it.record().value());
      ++records;
    }
  }
  state.SetItemsProcessed(int64_t(records));
}
BENCHMARK(BM_ChunkIterateRecords)->Arg(1024)->Arg(65536);

void BM_SegmentAppend(benchmark::State& state) {
  auto frame = MakeChunkFrame(size_t(state.range(0)), 100);
  auto segment = std::make_unique<Segment>(Buffer(8u << 20), 1, 0, 0, 0);
  for (auto _ : state) {
    auto r = segment->AppendChunk(frame);
    if (!r.ok()) {
      state.PauseTiming();
      segment = std::make_unique<Segment>(Buffer(8u << 20), 1, 0, 0, 0);
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(frame.size()));
}
BENCHMARK(BM_SegmentAppend)->Arg(1024)->Arg(65536);

void BM_GroupAppend(benchmark::State& state) {
  auto frame = MakeChunkFrame(1024, 100);
  MemoryManager mm(size_t(2) << 30, 1u << 20);
  auto group = std::make_unique<Group>(mm, 1, 0, 0, 1024);
  for (auto _ : state) {
    auto r = group->AppendChunk(frame);
    if (!r.ok()) {
      state.PauseTiming();
      group->Close();
      for (uint64_t i = 0; i < group->chunk_count(); ++i) {
        group->MarkChunkDurable(i);
      }
      (void)group->Trim();
      group = std::make_unique<Group>(mm, 1, 0, 0, 1024);
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(frame.size()));
}
BENCHMARK(BM_GroupAppend);

// Produce-path frame encoding: one sealed chunk of 100-byte records into
// an on-wire Produce frame. The `copy` variant re-copies the chunk body
// into the Writer before framing (the pre-scatter-gather data path); the
// `sg` variant references it and copies once at frame materialization.
// Counters report records/s and bytes actually memcpy'd per record.
void ProduceFrameEncodeBench(benchmark::State& state, bool scatter_gather) {
  auto chunk = MakeChunkFrame(size_t(state.range(0)), 100);
  auto view = ChunkView::Parse(chunk);
  const uint64_t records = view->record_count();
  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = 1;
  req.chunks = {chunk};
  size_t frame_size = 0;
  size_t memcpy_bytes = 0;
  for (auto _ : state) {
    rpc::Writer body(64);
    if (scatter_gather) {
      req.Encode(body);  // BytesRef: body references the chunk
    } else {
      body.U32(req.producer);
      body.U64(req.stream);
      body.Bool(req.recovery);
      body.U32(1);
      body.Bytes(chunk);  // copies the chunk body into the Writer
    }
    auto frame = rpc::Frame(rpc::Opcode::kProduce, body);
    frame_size = frame.size();
    // Copy path touches the chunk twice (into the Writer, then Writer ->
    // frame); the scatter-gather path once (piece -> frame).
    memcpy_bytes = scatter_gather ? frame_size : chunk.size() + frame_size;
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(records));
  state.counters["memcpy_B_per_rec"] =
      benchmark::Counter(double(memcpy_bytes) / double(records));
  state.counters["frame_B"] = benchmark::Counter(double(frame_size));
}
void BM_ProduceFrameEncodeCopy(benchmark::State& state) {
  ProduceFrameEncodeBench(state, false);
}
BENCHMARK(BM_ProduceFrameEncodeCopy)->Arg(16384)->Arg(65536);
void BM_ProduceFrameEncodeScatterGather(benchmark::State& state) {
  ProduceFrameEncodeBench(state, true);
}
BENCHMARK(BM_ProduceFrameEncodeScatterGather)->Arg(16384)->Arg(65536);

void BM_VlogAppendPollComplete(benchmark::State& state) {
  auto frame = MakeChunkFrame(1024, 100);
  MemoryManager mm(size_t(2) << 30, 1u << 20);
  Group group(mm, 1, 0, 0, 4096);
  VirtualLogConfig vc;
  vc.replication_factor = 3;
  VirtualLog vlog(0, vc, [](VirtualSegmentId) {
    return std::vector<NodeId>{2, 3};
  });
  auto chunk_view = ChunkView::Parse(frame);
  for (auto _ : state) {
    auto appended = group.AppendChunk(frame);
    if (!appended.ok()) {
      state.SkipWithError("group full");
      break;
    }
    ChunkRef ref;
    ref.loc = *appended;
    ref.group = &group;
    ref.stream = 1;
    ref.payload_checksum = chunk_view->payload_checksum();
    vlog.Append(ref);
    auto batch = vlog.Poll();
    vlog.Complete(*batch);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_VlogAppendPollComplete)->Iterations(300000);

}  // namespace
}  // namespace kera
