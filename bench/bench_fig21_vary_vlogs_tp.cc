// Figure 21: varying the number of virtual logs in the throughput
// configuration; chunk size 32 KB and 64 KB; 8 producers + 8 consumers,
// 4 brokers, one stream with 32 streamlets (4 sub-partitions each),
// replication factor 3. The vlogs are a shared per-broker pool sized 1-32.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig21(benchmark::State& state) {
  SimExperimentConfig cfg =
      Fig21(uint32_t(state.range(0)), size_t(state.range(1)) << 10);
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig21)
    ->ArgNames({"vlogs", "chunkKB"})
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {32, 64}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
