// Ablation: chunk aggregation in the virtual log. Sweeps the replication
// batch cap from "one chunk per replication RPC" (no aggregation — the
// naive design §II.B warns against) up to 1 MB batches, holding the rest
// of the latency-optimized configuration fixed (128 streams, R3, 8+8
// clients, 1 KB chunks, 4 vlogs per broker).
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_AblChunkAggregation(benchmark::State& state) {
  SimExperimentConfig cfg = Fig14to16(/*streams=*/128, /*vlogs=*/4,
                                      /*replication=*/3);
  // Batch cap in KB; 1 KB == one chunk per replication RPC.
  cfg.replication_max_batch_bytes = size_t(state.range(0)) << 10;
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_AblChunkAggregation)
    ->ArgNames({"batchKB"})
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
