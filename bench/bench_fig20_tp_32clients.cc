// Figure 20: throughput configuration, 32 producers + 32 consumers (64
// clients total pressuring the 4-broker cluster), one virtual log per
// sub-partition, chunk 4-64 KB, R 1/2/3.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig20(benchmark::State& state) {
  SimExperimentConfig cfg = Fig17to20(/*clients=*/32,
                                      size_t(state.range(0)) << 10,
                                      uint32_t(state.range(1)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig20)
    ->ArgNames({"chunkKB", "R"})
    ->ArgsProduct({{4, 8, 16, 32, 64}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
