// Figure 8: scaling the number of streams. Kafka vs KerA, 4 concurrent
// producers over 4 brokers, chunk size 1 KB, one partition per stream;
// KerA replicates through 4 shared virtual logs per broker. Series:
// {Kafka, KerA} x {R1, R2, R3} over 32..512 streams.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig08(benchmark::State& state) {
  SimExperimentConfig cfg = Fig8(SystemArg(state.range(0)),
                                 uint32_t(state.range(1)),
                                 uint32_t(state.range(2)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig08)
    ->ArgNames({"sys", "streams", "R"})
    ->ArgsProduct({{0, 1}, {32, 64, 128, 256, 512}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
