// Transport round-trip benchmarks over loopback TCP (SocketNetwork) vs
// the in-process ThreadedNetwork, with a configurable multiplexing window
// (in-flight requests per connection) and payload size. The parts
// variants ship a real encoded kProduce frame through CallAsyncParts —
// the zero-materialization path the producer and replicator use.
#include <benchmark/benchmark.h>

#include "bench_host_context.h"

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "rpc/messages.h"
#include "rpc/serialize.h"
#include "rpc/socket_transport.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {
namespace {

class EchoHandler : public rpc::RpcHandler {
 public:
  std::vector<std::byte> HandleRpc(
      std::span<const std::byte> request) override {
    return {request.begin(), request.end()};
  }
};

/// One sealed chunk of `payload_bytes` worth of records, wrapped in a
/// ProduceRequest body — the frame shape the producer sends.
rpc::Writer MakeProduceBody(ChunkBuilder& builder, size_t payload_bytes) {
  builder.Start(1, 0, 1);
  std::vector<std::byte> value(117, std::byte{0x42});
  size_t appended = 0;
  while (appended < payload_bytes && builder.AppendValue(value)) {
    appended += value.size();
  }
  (void)builder.Seal(1);

  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = 1;
  req.chunks.push_back(builder.SealedView());
  rpc::Writer body(64);
  req.Encode(body);
  return body;
}

/// Round-trips with `window` requests multiplexed in flight: issue until
/// the window is full, then retire-oldest/issue-one per iteration.
template <typename Issue>
void RunWindowed(benchmark::State& state, int window, size_t frame_bytes,
                 Issue issue) {
  std::deque<std::future<Result<std::vector<std::byte>>>> inflight;
  for (auto _ : state) {
    while (int(inflight.size()) < window) inflight.push_back(issue());
    auto r = inflight.front().get();
    inflight.pop_front();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  while (!inflight.empty()) {
    (void)inflight.front().get();
    inflight.pop_front();
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(frame_bytes));
  state.counters["window"] = double(window);
}

void BM_SocketEcho(benchmark::State& state) {
  rpc::SocketNetwork net;
  EchoHandler echo;
  auto port = net.Register(1, &echo);
  if (!port.ok()) {
    state.SkipWithError("register failed");
    return;
  }
  const int window = int(state.range(0));
  std::vector<std::byte> payload(size_t(state.range(1)), std::byte{0x5A});
  RunWindowed(state, window, payload.size(),
              [&] { return net.CallAsync(1, payload); });
}
BENCHMARK(BM_SocketEcho)
    ->ArgsProduct({{1, 8, 32}, {128, 4096}})
    ->ArgNames({"window", "bytes"});

void BM_ThreadedEcho(benchmark::State& state) {
  rpc::ThreadedNetwork net(4);
  EchoHandler echo;
  net.Register(1, &echo);
  const int window = int(state.range(0));
  std::vector<std::byte> payload(size_t(state.range(1)), std::byte{0x5A});
  RunWindowed(state, window, payload.size(),
              [&] { return net.CallAsync(1, payload); });
  net.Shutdown();
}
BENCHMARK(BM_ThreadedEcho)
    ->ArgsProduct({{1, 8, 32}, {128, 4096}})
    ->ArgNames({"window", "bytes"});

// Produce-frame round trips through the scatter-gather parts path: the
// frame's pieces (opcode, body runs, chunk bytes) go straight to the
// vectored send without being materialized into one buffer.
void BM_SocketProduceParts(benchmark::State& state) {
  rpc::SocketNetwork net;
  EchoHandler echo;
  auto port = net.Register(1, &echo);
  if (!port.ok()) {
    state.SkipWithError("register failed");
    return;
  }
  const int window = int(state.range(0));
  ChunkBuilder builder(size_t(state.range(1)) + 1024);
  rpc::Writer body = MakeProduceBody(builder, size_t(state.range(1)));
  std::array<std::byte, 2> opcode;
  const rpc::BytesRefParts parts =
      rpc::FrameAsParts(rpc::Opcode::kProduce, body, opcode);
  RunWindowed(state, window, parts.total_size(),
              [&] { return net.CallAsyncParts(1, parts); });
  auto stats = net.GetStats();
  state.counters["parts_copied_bytes"] = double(stats.parts_copied_bytes);
}
BENCHMARK(BM_SocketProduceParts)
    ->ArgsProduct({{1, 8, 32}, {4096, 65536}})
    ->ArgNames({"window", "bytes"});

// Same produce frame through the span path (one materialized copy), to
// price the copy the parts path avoids.
void BM_SocketProduceSpan(benchmark::State& state) {
  rpc::SocketNetwork net;
  EchoHandler echo;
  auto port = net.Register(1, &echo);
  if (!port.ok()) {
    state.SkipWithError("register failed");
    return;
  }
  const int window = int(state.range(0));
  ChunkBuilder builder(size_t(state.range(1)) + 1024);
  rpc::Writer body = MakeProduceBody(builder, size_t(state.range(1)));
  std::vector<std::byte> frame = rpc::Frame(rpc::Opcode::kProduce, body);
  RunWindowed(state, window, frame.size(),
              [&] { return net.CallAsync(1, frame); });
}
BENCHMARK(BM_SocketProduceSpan)
    ->ArgsProduct({{1, 8, 32}, {4096, 65536}})
    ->ArgNames({"window", "bytes"});

}  // namespace
}  // namespace kera
