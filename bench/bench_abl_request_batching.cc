// Ablation: producer request batching (the request.size trade-off of
// §V.A). Sweeps the number of chunks per produce request for the
// latency-optimized KerA configuration: deeper requests amortize RPC and
// replication latency at the cost of per-record latency.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_AblRequestBatching(benchmark::State& state) {
  SimExperimentConfig cfg = Fig14to16(/*streams=*/128, /*vlogs=*/4,
                                      /*replication=*/3);
  cfg.request_max_chunks = uint32_t(state.range(0));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_AblRequestBatching)
    ->ArgNames({"chunks_per_request"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
