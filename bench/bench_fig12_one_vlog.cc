// Figure 12: scaling the number of streams in KerA with ONE shared
// replicated virtual log per broker for up to 512 streams. Replication
// factor 1/2/3; 8 concurrent producers and consumers, 4 brokers, chunk
// size 1 KB.
//
// The W axis sweeps the replication window (batches in flight per vlog).
// With a single shared vlog per broker the stop-and-wait (W=1) pipeline
// gates ingestion on the replication round-trip; W>=4 overlaps the
// round-trips and is the headline win of pipelined replication.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig12(benchmark::State& state) {
  SimExperimentConfig cfg =
      Fig12(uint32_t(state.range(0)), uint32_t(state.range(1)));
  cfg.replication_window = uint32_t(state.range(2));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig12)
    ->ArgNames({"streams", "R", "W"})
    ->ArgsProduct({{64, 128, 256, 512}, {1, 2, 3}, {1, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
