// Figure 12: scaling the number of streams in KerA with ONE shared
// replicated virtual log per broker for up to 512 streams. Replication
// factor 1/2/3; 8 concurrent producers and consumers, 4 brokers, chunk
// size 1 KB.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig12(benchmark::State& state) {
  SimExperimentConfig cfg =
      Fig12(uint32_t(state.range(0)), uint32_t(state.range(1)));
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig12)
    ->ArgNames({"streams", "R"})
    ->ArgsProduct({{64, 128, 256, 512}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
