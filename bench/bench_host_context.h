// Stamps host identification (nproc, CPU model) into the google-benchmark
// context, so --benchmark_out JSON records the machine a run came from.
// Included for its side effect: the registrar runs during static
// initialization, before benchmark_main's RunSpecifiedBenchmarks.
// AddCustomContext allocates its global map lazily, so static-init order
// across translation units is not a concern.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "common/host_info.h"

namespace kera::bench_internal {

struct HostContextRegistrar {
  HostContextRegistrar() {
    benchmark::AddCustomContext("nproc", std::to_string(HostNproc()));
    benchmark::AddCustomContext("cpu_model", HostCpuModel());
  }
};

inline const HostContextRegistrar host_context_registrar{};

}  // namespace kera::bench_internal
