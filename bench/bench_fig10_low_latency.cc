// Figure 10: low-latency configuration. Kafka vs KerA while varying the
// number of streams; replication factor 3, chunk size 1 KB, 4 producers
// running in parallel with 4 consumers on 4 brokers. KerA runs with 4 and
// with 32 virtual logs per broker (series 1 and 2); Kafka is series 0.
#include "sim_bench_util.h"

namespace kera::sim {
namespace {

void BM_Fig10(benchmark::State& state) {
  int64_t series = state.range(0);  // 0 = Kafka, 1 = KerA-4vlog, 2 = KerA-32
  uint32_t streams = uint32_t(state.range(1));
  SimExperimentConfig cfg =
      series == 0 ? Fig10(System::kKafka, streams, 4)
                  : Fig10(System::kKerA, streams, series == 1 ? 4 : 32);
  SimExperimentResult result;
  for (auto _ : state) {
    result = RunSimExperiment(cfg);
  }
  ReportResult(state, result);
}

BENCHMARK(BM_Fig10)
    ->ArgNames({"series", "streams"})
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256, 512}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kera::sim
